package policy

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"cres/internal/cryptoutil"
	"cres/internal/hw"
)

// Action is a policed operation.
type Action uint8

// Actions.
const (
	ActionRead Action = 1 << iota
	ActionWrite
	ActionExec
)

// ActionAll covers every action.
const ActionAll = ActionRead | ActionWrite | ActionExec

// String implements fmt.Stringer.
func (a Action) String() string {
	var parts []string
	if a&ActionRead != 0 {
		parts = append(parts, "read")
	}
	if a&ActionWrite != 0 {
		parts = append(parts, "write")
	}
	if a&ActionExec != 0 {
		parts = append(parts, "exec")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// ActionFromTx maps a bus transaction kind to an Action.
func ActionFromTx(k hw.TxKind) Action {
	switch k {
	case hw.TxRead:
		return ActionRead
	case hw.TxWrite:
		return ActionWrite
	case hw.TxExec:
		return ActionExec
	default:
		return 0
	}
}

// Effect is a rule outcome.
type Effect uint8

// Effects.
const (
	// Deny blocks the access.
	Deny Effect = iota + 1
	// Allow permits the access.
	Allow
)

// String implements fmt.Stringer.
func (e Effect) String() string {
	switch e {
	case Deny:
		return "deny"
	case Allow:
		return "allow"
	default:
		return fmt.Sprintf("effect(%d)", uint8(e))
	}
}

// Rule is one policy statement. Subject and Object support the "*"
// wildcard and "prefix*" matching.
type Rule struct {
	// Name identifies the rule in decisions and evidence.
	Name string
	// Subject matches the initiator name.
	Subject string
	// Object matches the resource (region) name.
	Object string
	// Actions is the set of actions the rule applies to.
	Actions Action
	// Effect is the outcome when the rule matches.
	Effect Effect
	// Priority orders evaluation; higher evaluates first. Rules with
	// equal priority evaluate in insertion order.
	Priority int
}

// matches reports whether the rule applies to the triple.
func (r *Rule) matches(subject, object string, action Action) bool {
	return r.Actions&action != 0 && matchPattern(r.Subject, subject) && matchPattern(r.Object, object)
}

func matchPattern(pattern, s string) bool {
	if pattern == "*" {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(s, pattern[:len(pattern)-1])
	}
	return pattern == s
}

// Decision is the result of evaluating a Set.
type Decision struct {
	Effect Effect
	// Rule is the name of the deciding rule, or "" for the default.
	Rule string
}

// Set is an ordered policy. Create with NewSet.
type Set struct {
	name         string
	rules        []Rule
	defaultAllow bool
	evaluations  uint64
	denials      uint64
}

// NewSet creates a policy set. defaultAllow selects the default-permit
// (legacy) or default-deny (hardened) posture for unmatched triples.
func NewSet(name string, defaultAllow bool) *Set {
	return &Set{name: name, defaultAllow: defaultAllow}
}

// Name returns the set's name.
func (s *Set) Name() string { return s.name }

// Add appends a rule. Rules are stably sorted by descending priority.
func (s *Set) Add(r Rule) error {
	if r.Name == "" {
		return errors.New("policy: rule needs a name")
	}
	if r.Subject == "" || r.Object == "" {
		return fmt.Errorf("policy: rule %q needs subject and object", r.Name)
	}
	if r.Actions == 0 {
		return fmt.Errorf("policy: rule %q covers no actions", r.Name)
	}
	if r.Effect != Allow && r.Effect != Deny {
		return fmt.Errorf("policy: rule %q has invalid effect", r.Name)
	}
	s.rules = append(s.rules, r)
	sort.SliceStable(s.rules, func(i, j int) bool { return s.rules[i].Priority > s.rules[j].Priority })
	return nil
}

// Rules returns a copy of the rules in evaluation order.
func (s *Set) Rules() []Rule {
	out := make([]Rule, len(s.rules))
	copy(out, s.rules)
	return out
}

// Evaluate returns the decision for a triple: first matching rule wins,
// else the default posture.
func (s *Set) Evaluate(subject, object string, action Action) Decision {
	s.evaluations++
	for i := range s.rules {
		if s.rules[i].matches(subject, object, action) {
			d := Decision{Effect: s.rules[i].Effect, Rule: s.rules[i].Name}
			if d.Effect == Deny {
				s.denials++
			}
			return d
		}
	}
	if s.defaultAllow {
		return Decision{Effect: Allow}
	}
	s.denials++
	return Decision{Effect: Deny}
}

// Stats returns (evaluations, denials).
func (s *Set) Stats() (uint64, uint64) { return s.evaluations, s.denials }

// Digest returns a deterministic digest of the policy for measurement
// into the TPM (PCRPolicy), making the loaded policy attestable.
func (s *Set) Digest() cryptoutil.Digest {
	parts := make([][]byte, 0, len(s.rules)*2+2)
	parts = append(parts, []byte(s.name))
	if s.defaultAllow {
		parts = append(parts, []byte{1})
	} else {
		parts = append(parts, []byte{0})
	}
	for _, r := range s.rules {
		parts = append(parts, []byte(fmt.Sprintf("%s|%s|%s|%d|%d|%d", r.Name, r.Subject, r.Object, r.Actions, r.Effect, r.Priority)))
	}
	return cryptoutil.SumAll(parts...)
}

// Violation describes a policy denial observed at the enforcement point.
type Violation struct {
	Tx   hw.Transaction
	Rule string
}

// Gate compiles the policy into a bus gate enforcing it at the
// interconnect, reporting violations to onViolation (which may be nil).
// Object names are the bus region names resolved via mem.
func (s *Set) Gate(mem *hw.Memory, onViolation func(Violation)) hw.Gate {
	return hw.GateFunc(func(tx hw.Transaction) *hw.Fault {
		region, fault := mem.Find(tx.Addr, tx.Size)
		object := ""
		if fault == nil {
			object = region.Name
		}
		d := s.Evaluate(tx.Initiator, object, ActionFromTx(tx.Kind))
		if d.Effect == Allow {
			return nil
		}
		if onViolation != nil {
			onViolation(Violation{Tx: tx, Rule: d.Rule})
		}
		return &hw.Fault{
			Code:   hw.FaultBlocked,
			Addr:   tx.Addr,
			Region: object,
			Detail: fmt.Sprintf("policy %q rule %q denied %s by %s", s.name, d.Rule, tx.Kind, tx.Initiator),
		}
	})
}
