// Package policy implements policy-based security modelling and
// enforcement for the platform, after the authors' companion work
// ("Policy-Based Security Modelling and Enforcement Approach for Emerging
// Embedded Architectures", SOCC 2018; "Embedded policing and policy
// enforcement approach for future secure IoT technologies", Living in the
// IoT 2018).
//
// A policy Set is an ordered collection of allow/deny rules over
// (subject, object, action) triples — subjects are bus initiators,
// objects are memory regions or abstract resources, actions are
// read/write/execute. The Set compiles to a bus Gate for hardware-level
// enforcement, and its digest is measured into the TPM so the loaded
// policy is part of the attested platform state.
//
// Determinism contract: rule evaluation is ordered by priority then
// registration; the digest covers the normalized rule list, so the
// same policy set always measures identically into the TPM.
package policy
