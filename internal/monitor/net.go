package monitor

import (
	"fmt"
	"time"

	"cres/internal/sim"
)

// Signature classes emitted by the network monitor.
const (
	SigNetAuthFailure = "net.auth-failure"
	SigNetReplay      = "net.replay"
	SigNetRateAnomaly = "net.rate.anomaly"
)

// NetConfig configures a NetMonitor.
type NetConfig struct {
	// RateWindow is the per-peer message-rate sampling window. Zero
	// disables rate anomaly detection.
	RateWindow time.Duration
	// RateThreshold is the z-score threshold (default 6).
	RateThreshold float64
	// RateWarmup is the number of windows for baseline learning
	// (default 16).
	RateWarmup int
	// AuthFailureEscalation is the number of authentication failures
	// from one peer after which severity escalates from Warning to
	// Critical (default 3).
	AuthFailureEscalation uint64
	// DisableSignatures turns off auth-failure and replay signatures,
	// leaving only rate anomaly detection (E3b ablation).
	DisableSignatures bool
}

// NetMonitor watches machine-to-machine traffic as seen by the device's
// network stack: authentication failures (man-in-the-middle or spoofing
// indicators per Section III-4), replayed messages, and per-peer message
// rate anomalies. The m2m endpoint feeds it via the Observe* methods.
type NetMonitor struct {
	engine *sim.Engine
	sink   Sink
	cfg    NetConfig

	msgCounts    map[string]uint64
	authFailures map[string]uint64
	detectors    map[string]*Anomaly
	ticker       *sim.Ticker

	messages uint64
	alerts   uint64
}

var _ Monitor = (*NetMonitor)(nil)

// NewNetMonitor creates a network monitor.
func NewNetMonitor(engine *sim.Engine, cfg NetConfig, sink Sink) (*NetMonitor, error) {
	if sink == nil {
		return nil, fmt.Errorf("monitor: net monitor needs a sink")
	}
	if cfg.RateThreshold == 0 {
		cfg.RateThreshold = 6
	}
	if cfg.RateWarmup == 0 {
		cfg.RateWarmup = 16
	}
	if cfg.AuthFailureEscalation == 0 {
		cfg.AuthFailureEscalation = 3
	}
	m := &NetMonitor{
		engine:       engine,
		sink:         sink,
		cfg:          cfg,
		msgCounts:    make(map[string]uint64),
		authFailures: make(map[string]uint64),
		detectors:    make(map[string]*Anomaly),
	}
	if cfg.RateWindow > 0 {
		t, err := sim.NewTicker(engine, cfg.RateWindow, m.sampleRates)
		if err != nil {
			return nil, fmt.Errorf("monitor: net rate ticker: %w", err)
		}
		m.ticker = t
	}
	return m, nil
}

// Name implements Monitor.
func (m *NetMonitor) Name() string { return "net-monitor" }

// Stop halts rate sampling.
func (m *NetMonitor) Stop() {
	if m.ticker != nil {
		m.ticker.Stop()
	}
}

// ObserveMessage records a successfully authenticated message from peer.
func (m *NetMonitor) ObserveMessage(peer string) {
	m.messages++
	m.msgCounts[peer]++
}

// ObserveAuthFailure records a message from peer that failed
// authentication — the man-in-the-middle / spoofing signature.
func (m *NetMonitor) ObserveAuthFailure(peer, detail string) {
	m.messages++
	m.authFailures[peer]++
	if m.cfg.DisableSignatures {
		return
	}
	sev := Warning
	if m.authFailures[peer] >= m.cfg.AuthFailureEscalation {
		sev = Critical
	}
	m.emit(Alert{
		Monitor: m.Name(), Resource: peer, Severity: sev,
		Signature: SigNetAuthFailure,
		Detail:    fmt.Sprintf("authentication failure #%d from %s: %s", m.authFailures[peer], peer, detail),
	})
}

// ObserveReplay records a replayed (stale-nonce) message from peer.
func (m *NetMonitor) ObserveReplay(peer, detail string) {
	m.messages++
	if m.cfg.DisableSignatures {
		return
	}
	m.emit(Alert{
		Monitor: m.Name(), Resource: peer, Severity: Critical,
		Signature: SigNetReplay,
		Detail:    fmt.Sprintf("replayed message from %s: %s", peer, detail),
	})
}

func (m *NetMonitor) sampleRates(at sim.VirtualTime) {
	for peer, n := range m.msgCounts {
		det, ok := m.detectors[peer]
		if !ok {
			var err error
			det, err = NewAnomaly(0.2, m.cfg.RateThreshold, m.cfg.RateWarmup)
			if err != nil {
				continue
			}
			m.detectors[peer] = det
		}
		score, bad := det.Observe(float64(n))
		// Only upward deviations are flooding; a quiet resource (e.g.
		// one the response manager just isolated) is not an attack.
		if bad && float64(n) > det.Mean() {
			m.emit(Alert{
				At: at, Monitor: m.Name(), Resource: peer, Severity: Warning,
				Signature: SigNetRateAnomaly, Score: score,
				Detail: fmt.Sprintf("%s sent %d messages in window (baseline %.1f±%.1f, z=%.1f)",
					peer, n, det.Mean(), det.StdDev(), score),
			})
		}
		m.msgCounts[peer] = 0
	}
}

func (m *NetMonitor) emit(a Alert) {
	if a.At == 0 {
		a.At = m.engine.Now()
	}
	m.alerts++
	m.sink.HandleAlert(a)
}

// Snapshot implements Monitor.
func (m *NetMonitor) Snapshot() map[string]float64 {
	return map[string]float64{
		"messages_total": float64(m.messages),
		"alerts_total":   float64(m.alerts),
	}
}
