// Package monitor implements the paper's Characteristic 2: Active Runtime
// Resource Monitors. Each monitor watches one class of platform resource —
// bus traffic, control flow, cache timing, environmental sensors, network
// messages — producing fine-grained, resource-specific observations and
// raising alerts toward the System Security Manager (package core).
//
// Detection combines the two classical methods the paper surveys under
// the DETECT core security function: signature-based rules (known-bad
// patterns such as security faults, invalid control-flow edges, replayed
// nonces) and statistical anomaly detection (EWMA mean/variance with a
// z-score threshold over per-resource rates).
//
// Determinism contract: monitors sample on sim tickers and keep
// per-resource state in dense slices or explicitly ordered walks, so
// the alert stream — order, timing, text — is a pure function of the
// engine seed and the observed workload. The bus monitor's per-
// transaction path is allocation-free; E9 and the perf gate hold it
// to that.
package monitor
