package monitor

import (
	"strings"
	"testing"
	"time"

	"cres/internal/hw"
	"cres/internal/sim"
)

// collector is a test Sink.
type collector struct {
	alerts []Alert
}

func (c *collector) HandleAlert(a Alert) { c.alerts = append(c.alerts, a) }

func (c *collector) bySignature(sig string) []Alert {
	var out []Alert
	for _, a := range c.alerts {
		if a.Signature == sig {
			out = append(out, a)
		}
	}
	return out
}

func newMonitoredSoC(t *testing.T) (*sim.Engine, *hw.SoC, *collector) {
	t.Helper()
	e := sim.New(7)
	soc, err := hw.NewSoC(e, hw.SoCConfig{WithSSMCore: true})
	if err != nil {
		t.Fatal(err)
	}
	return e, soc, &collector{}
}

func TestBusMonitorSecurityFault(t *testing.T) {
	e, soc, sink := newMonitoredSoC(t)
	m, err := NewBusMonitor(e, BusConfig{}, sink)
	if err != nil {
		t.Fatal(err)
	}
	soc.Bus.Subscribe(m)
	// Normal-world app core pokes at secure SRAM.
	soc.AppCore.Read(hw.AddrSecureSRAM, 4)
	alerts := sink.bySignature(SigBusSecurityFault)
	if len(alerts) != 1 {
		t.Fatalf("security-fault alerts = %d, want 1", len(alerts))
	}
	if alerts[0].Severity != Critical || alerts[0].Resource != "app-core" {
		t.Fatalf("alert = %+v", alerts[0])
	}
}

func TestBusMonitorPermFault(t *testing.T) {
	e, soc, sink := newMonitoredSoC(t)
	m, err := NewBusMonitor(e, BusConfig{}, sink)
	if err != nil {
		t.Fatal(err)
	}
	soc.Bus.Subscribe(m)
	soc.AppCore.Write(hw.AddrBootROM, []byte{1}) // ROM is read/exec only
	if len(sink.bySignature(SigBusPermFault)) != 1 {
		t.Fatal("perm fault not alerted")
	}
}

func TestBusMonitorWorldMismatch(t *testing.T) {
	e, soc, sink := newMonitoredSoC(t)
	m, err := NewBusMonitor(e, BusConfig{
		ProvisionedWorlds: map[string]hw.World{"app-core": hw.WorldNormal},
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	soc.Bus.Subscribe(m)
	// Hardware attack flips the NS bit in flight.
	soc.Bus.SetTamper(func(tx *hw.Transaction) {
		if tx.Initiator == "app-core" {
			tx.World = hw.WorldSecure
		}
	})
	// The access SUCCEEDS (that is the attack) but the monitor flags it.
	if _, err := soc.AppCore.Read(hw.AddrSecureSRAM, 4); err != nil {
		t.Fatalf("tampered access should succeed: %v", err)
	}
	alerts := sink.bySignature(SigBusWorldMismatch)
	if len(alerts) != 1 {
		t.Fatalf("world-mismatch alerts = %d, want 1", len(alerts))
	}
	if !strings.Contains(alerts[0].Detail, "tampering") {
		t.Fatalf("detail = %q", alerts[0].Detail)
	}
}

func TestBusMonitorWatchpoint(t *testing.T) {
	e, soc, sink := newMonitoredSoC(t)
	m, err := NewBusMonitor(e, BusConfig{
		Watchpoints: []Watchpoint{{
			Region:  hw.RegionSlotA,
			Kinds:   []hw.TxKind{hw.TxWrite},
			Allowed: []string{"updater"},
		}},
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	soc.Bus.Subscribe(m)

	// Reads of the slot are not watched.
	soc.AppCore.Read(hw.AddrSlotA, 4)
	if len(sink.bySignature(SigBusWatchpoint)) != 0 {
		t.Fatal("read triggered write watchpoint")
	}
	// Runtime write to the firmware slot by the app core: firmware
	// tampering signature.
	soc.AppCore.Write(hw.AddrSlotA, []byte{0xde, 0xad})
	alerts := sink.bySignature(SigBusWatchpoint)
	if len(alerts) != 1 {
		t.Fatalf("watchpoint alerts = %d, want 1", len(alerts))
	}
	// The allowed updater does not trigger it.
	updater := soc.Bus.Attach("updater", hw.WorldSecure)
	updater.Write(hw.AddrSlotA, []byte{0x00})
	if len(sink.bySignature(SigBusWatchpoint)) != 1 {
		t.Fatal("allowed initiator triggered watchpoint")
	}
}

func TestBusMonitorRateAnomaly(t *testing.T) {
	e, soc, sink := newMonitoredSoC(t)
	m, err := NewBusMonitor(e, BusConfig{
		RateWindow:    time.Millisecond,
		RateThreshold: 5,
		RateWarmup:    8,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	soc.Bus.Subscribe(m)

	// Healthy workload: ~20 txs/ms with mild jitter for 20 windows.
	tick, err := sim.NewTicker(e, 50*time.Microsecond, func(sim.VirtualTime) {
		soc.AppCore.Read(hw.AddrSRAM, 4)
	})
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(20 * time.Millisecond)
	if n := len(sink.bySignature(SigBusRateAnomaly)); n != 0 {
		t.Fatalf("healthy traffic flagged %d times", n)
	}
	tick.Stop()

	// Attack: 50x the rate (resource exhaustion / scanning).
	flood, err := sim.NewTicker(e, time.Microsecond, func(sim.VirtualTime) {
		soc.AppCore.Read(hw.AddrSRAM, 4)
	})
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(3 * time.Millisecond)
	flood.Stop()
	if len(sink.bySignature(SigBusRateAnomaly)) == 0 {
		t.Fatal("flood not flagged")
	}
	m.Stop()
}

func TestBusMonitorSnapshot(t *testing.T) {
	e, soc, sink := newMonitoredSoC(t)
	m, err := NewBusMonitor(e, BusConfig{}, sink)
	if err != nil {
		t.Fatal(err)
	}
	soc.Bus.Subscribe(m)
	soc.AppCore.Read(hw.AddrSRAM, 4)
	snap := m.Snapshot()
	if snap["tx_total"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	if m.Name() != "bus-monitor" {
		t.Fatal("name")
	}
}

func TestBusMonitorNeedsSink(t *testing.T) {
	e := sim.New(1)
	if _, err := NewBusMonitor(e, BusConfig{}, nil); err == nil {
		t.Fatal("nil sink accepted")
	}
}

func testCFG() CFG {
	// 0 -> 1 -> 2 -> 3 -> 1 (loop); 2 -> 4 (exit)
	return CFG{
		0: {1},
		1: {2},
		2: {3, 4},
		3: {1},
		4: nil,
	}
}

func TestCFIMonitorAcceptsLegalPath(t *testing.T) {
	e, soc, sink := newMonitoredSoC(t)
	m, err := NewCFIMonitor(e, testCFG(), sink)
	if err != nil {
		t.Fatal(err)
	}
	soc.AppCore.SubscribeExec(m)
	for _, b := range []hw.BlockID{1, 2, 3, 1, 2, 4} {
		soc.AppCore.ExecBlock(b)
	}
	if len(sink.alerts) != 0 {
		t.Fatalf("legal path raised %d alerts: %+v", len(sink.alerts), sink.alerts)
	}
	if m.Snapshot()["blocks_total"] != 6 {
		t.Fatal("block count")
	}
}

func TestCFIMonitorFlagsInjectedCode(t *testing.T) {
	e, soc, sink := newMonitoredSoC(t)
	m, err := NewCFIMonitor(e, testCFG(), sink)
	if err != nil {
		t.Fatal(err)
	}
	soc.AppCore.SubscribeExec(m)
	soc.AppCore.ExecBlock(1)
	soc.AppCore.ExecBlock(999) // injected block
	alerts := sink.bySignature(SigCFIUnknownBlock)
	if len(alerts) != 1 || alerts[0].Severity != Critical {
		t.Fatalf("alerts = %+v", sink.alerts)
	}
}

func TestCFIMonitorFlagsIllegalEdge(t *testing.T) {
	e, soc, sink := newMonitoredSoC(t)
	m, err := NewCFIMonitor(e, testCFG(), sink)
	if err != nil {
		t.Fatal(err)
	}
	soc.AppCore.SubscribeExec(m)
	soc.AppCore.ExecBlock(1)
	soc.AppCore.ExecBlock(3) // 1 -> 3 is not an edge
	alerts := sink.bySignature(SigCFIInvalidEdge)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v", sink.alerts)
	}
	if m.Snapshot()["violations_total"] != 1 {
		t.Fatal("violation count")
	}
}

func TestCFIMonitorReset(t *testing.T) {
	e, soc, sink := newMonitoredSoC(t)
	m, err := NewCFIMonitor(e, testCFG(), sink)
	if err != nil {
		t.Fatal(err)
	}
	soc.AppCore.SubscribeExec(m)
	soc.AppCore.ExecBlock(1)
	soc.AppCore.ExecBlock(2)
	// Core restarts; entry from pseudo-block 0 must be legal again.
	m.Reset("app-core")
	soc.AppCore.ExecBlock(1)
	if len(sink.alerts) != 0 {
		t.Fatalf("restart path flagged: %+v", sink.alerts)
	}
}

func TestCFIMonitorValidation(t *testing.T) {
	e := sim.New(1)
	if _, err := NewCFIMonitor(e, nil, SinkFunc(func(Alert) {})); err == nil {
		t.Fatal("empty CFG accepted")
	}
	if _, err := NewCFIMonitor(e, testCFG(), nil); err == nil {
		t.Fatal("nil sink accepted")
	}
}

func TestTimingMonitorDetectsCovertChannel(t *testing.T) {
	e, soc, sink := newMonitoredSoC(t)
	_, err := NewTimingMonitor(e, soc.Cache, TimingConfig{
		Window:              time.Millisecond,
		CrossWorldPerWindow: 8,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy mixed workload: single-world accesses.
	warm, err := sim.NewTicker(e, 20*time.Microsecond, func(sim.VirtualTime) {
		soc.Cache.Access(hw.Addr(e.RNG().Intn(64)*64), hw.WorldNormal)
	})
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(5 * time.Millisecond)
	if n := len(sink.bySignature(SigTimingCrossWorld)); n != 0 {
		t.Fatalf("healthy workload flagged %d times", n)
	}
	warm.Stop()

	// Covert channel: secure world systematically evicts normal lines.
	// Prime sets with normal world, then flood from secure world.
	attack, err := sim.NewTicker(e, 10*time.Microsecond, func(sim.VirtualTime) {
		set := e.RNG().Intn(8)
		for w := 0; w < 5; w++ {
			soc.Cache.Access(hw.Addr((uint64(w+100)*64+uint64(set))*64), hw.WorldNormal)
			soc.Cache.Access(hw.Addr((uint64(w+200)*64+uint64(set))*64), hw.WorldSecure)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(3 * time.Millisecond)
	attack.Stop()
	if len(sink.bySignature(SigTimingCrossWorld)) == 0 {
		t.Fatal("covert channel not detected")
	}
}

func TestTimingMonitorValidation(t *testing.T) {
	e, soc, _ := newMonitoredSoC(t)
	if _, err := NewTimingMonitor(e, soc.Cache, TimingConfig{Window: time.Millisecond}, nil); err == nil {
		t.Fatal("nil sink accepted")
	}
	if _, err := NewTimingMonitor(e, soc.Cache, TimingConfig{}, SinkFunc(func(Alert) {})); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestTimingMonitorSnapshot(t *testing.T) {
	e, soc, sink := newMonitoredSoC(t)
	m, err := NewTimingMonitor(e, soc.Cache, TimingConfig{Window: time.Millisecond}, sink)
	if err != nil {
		t.Fatal(err)
	}
	soc.Cache.Access(0, hw.WorldNormal)
	snap := m.Snapshot()
	if snap["cache_accesses"] != 1 || snap["miss_rate"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	m.Stop()
}

func TestEnvMonitorOutOfBand(t *testing.T) {
	e, soc, sink := newMonitoredSoC(t)
	m, err := NewEnvMonitor(e, soc.EnvSensors(), EnvConfig{
		Window: time.Millisecond,
		Bands: map[string]EnvBand{
			"vdd-core": {MaxDeviation: 0.05},
		},
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(10 * time.Millisecond)
	if n := len(sink.bySignature(SigEnvOutOfBand)); n != 0 {
		t.Fatalf("healthy sensors flagged %d times", n)
	}
	// Voltage glitch attack: +0.3V.
	soc.Voltage.InjectOffset(0.3)
	e.RunFor(3 * time.Millisecond)
	alerts := sink.bySignature(SigEnvOutOfBand)
	if len(alerts) == 0 {
		t.Fatal("voltage glitch not detected")
	}
	if alerts[0].Resource != "vdd-core" || alerts[0].Severity != Critical {
		t.Fatalf("alert = %+v", alerts[0])
	}
	m.Stop()
}

func TestEnvMonitorValidation(t *testing.T) {
	e, soc, _ := newMonitoredSoC(t)
	sink := SinkFunc(func(Alert) {})
	if _, err := NewEnvMonitor(e, soc.EnvSensors(), EnvConfig{Window: time.Millisecond}, nil); err == nil {
		t.Fatal("nil sink accepted")
	}
	if _, err := NewEnvMonitor(e, soc.EnvSensors(), EnvConfig{}, sink); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := NewEnvMonitor(e, nil, EnvConfig{Window: time.Millisecond}, sink); err == nil {
		t.Fatal("no sensors accepted")
	}
}

func TestEnvMonitorSnapshot(t *testing.T) {
	e, soc, sink := newMonitoredSoC(t)
	m, err := NewEnvMonitor(e, soc.EnvSensors(), EnvConfig{Window: time.Millisecond}, sink)
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if _, ok := snap["sensor.vdd-core"]; !ok {
		t.Fatalf("snapshot = %v", snap)
	}
	m.Stop()
}

func TestNetMonitorAuthFailureEscalation(t *testing.T) {
	e := sim.New(1)
	sink := &collector{}
	m, err := NewNetMonitor(e, NetConfig{AuthFailureEscalation: 3}, sink)
	if err != nil {
		t.Fatal(err)
	}
	m.ObserveAuthFailure("gateway-1", "bad signature")
	m.ObserveAuthFailure("gateway-1", "bad signature")
	alerts := sink.bySignature(SigNetAuthFailure)
	if alerts[0].Severity != Warning || alerts[1].Severity != Warning {
		t.Fatal("early failures should be warnings")
	}
	m.ObserveAuthFailure("gateway-1", "bad signature")
	alerts = sink.bySignature(SigNetAuthFailure)
	if alerts[2].Severity != Critical {
		t.Fatal("third failure should escalate to critical")
	}
}

func TestNetMonitorReplay(t *testing.T) {
	e := sim.New(1)
	sink := &collector{}
	m, err := NewNetMonitor(e, NetConfig{}, sink)
	if err != nil {
		t.Fatal(err)
	}
	m.ObserveReplay("peer-x", "nonce 42 reused")
	alerts := sink.bySignature(SigNetReplay)
	if len(alerts) != 1 || alerts[0].Severity != Critical {
		t.Fatalf("alerts = %+v", sink.alerts)
	}
}

func TestNetMonitorRateAnomaly(t *testing.T) {
	e := sim.New(1)
	sink := &collector{}
	m, err := NewNetMonitor(e, NetConfig{
		RateWindow: time.Millisecond,
		RateWarmup: 8,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy: ~10 msgs/window for 15 windows.
	tk, err := sim.NewTicker(e, 100*time.Microsecond, func(sim.VirtualTime) {
		m.ObserveMessage("peer-a")
	})
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(15 * time.Millisecond)
	tk.Stop()
	if n := len(sink.bySignature(SigNetRateAnomaly)); n != 0 {
		t.Fatalf("healthy rate flagged %d times", n)
	}
	// Flood.
	fl, err := sim.NewTicker(e, 2*time.Microsecond, func(sim.VirtualTime) {
		m.ObserveMessage("peer-a")
	})
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(3 * time.Millisecond)
	fl.Stop()
	if len(sink.bySignature(SigNetRateAnomaly)) == 0 {
		t.Fatal("message flood not flagged")
	}
	m.Stop()
	if m.Snapshot()["messages_total"] == 0 {
		t.Fatal("snapshot")
	}
}

func TestNetMonitorNeedsSink(t *testing.T) {
	e := sim.New(1)
	if _, err := NewNetMonitor(e, NetConfig{}, nil); err == nil {
		t.Fatal("nil sink accepted")
	}
}
