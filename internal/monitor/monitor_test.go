package monitor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSeverityString(t *testing.T) {
	if Info.String() != "info" || Warning.String() != "warning" || Critical.String() != "critical" {
		t.Fatal("severity names")
	}
}

func TestNewAnomalyValidation(t *testing.T) {
	cases := []struct {
		alpha, thr float64
		warmup     int
	}{
		{0, 3, 10},
		{1.5, 3, 10},
		{0.2, 0, 10},
		{0.2, -1, 10},
		{0.2, 3, 0},
	}
	for i, c := range cases {
		if _, err := NewAnomaly(c.alpha, c.thr, c.warmup); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAnomalyWarmupNeverFlags(t *testing.T) {
	det, err := NewAnomaly(0.2, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		// Wild values during warm-up are absorbed, not flagged.
		if _, bad := det.Observe(float64(i * 1000)); bad {
			t.Fatal("flagged during warm-up")
		}
	}
	if !det.Ready() {
		t.Fatal("not ready after warm-up")
	}
}

func TestAnomalyDetectsSpike(t *testing.T) {
	det, err := NewAnomaly(0.2, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Learn a noisy baseline around 100.
	vals := []float64{100, 102, 98, 101, 99, 103, 97, 100, 101, 99, 100, 102}
	for _, v := range vals {
		det.Observe(v)
	}
	score, bad := det.Observe(100)
	if bad {
		t.Fatalf("baseline value flagged (score %f)", score)
	}
	score, bad = det.Observe(500)
	if !bad {
		t.Fatalf("5x spike not flagged (score %f)", score)
	}
	if score < 4 {
		t.Fatalf("spike score %f below threshold", score)
	}
}

func TestAnomalyDoesNotPoisonBaseline(t *testing.T) {
	det, err := NewAnomaly(0.2, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{100, 102, 98, 101, 99, 103, 97, 100} {
		det.Observe(v)
	}
	meanBefore := det.Mean()
	// Sustained attack: anomalous samples must not shift the baseline.
	for i := 0; i < 50; i++ {
		if _, bad := det.Observe(1000); !bad {
			t.Fatal("sustained attack stopped being flagged (baseline poisoned)")
		}
	}
	if math.Abs(det.Mean()-meanBefore) > 1e-9 {
		t.Fatalf("baseline moved from %f to %f under attack", meanBefore, det.Mean())
	}
}

func TestAnomalyConstantBaseline(t *testing.T) {
	det, err := NewAnomaly(0.2, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		det.Observe(42)
	}
	if _, bad := det.Observe(42); bad {
		t.Fatal("constant value flagged on constant baseline")
	}
	if _, bad := det.Observe(43); !bad {
		t.Fatal("deviation from constant baseline not flagged")
	}
}

// Property: samples equal to the learned mean are never anomalous.
func TestPropertyMeanNeverAnomalous(t *testing.T) {
	f := func(base uint16) bool {
		det, err := NewAnomaly(0.2, 3, 4)
		if err != nil {
			return false
		}
		v := float64(base)
		for i := 0; i < 8; i++ {
			det.Observe(v)
		}
		_, bad := det.Observe(v)
		return !bad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
