package monitor

import (
	"fmt"
	"math"

	"cres/internal/sim"
)

// Severity grades an alert.
type Severity uint8

// Severities.
const (
	// Info marks routine but noteworthy events.
	Info Severity = iota + 1
	// Warning marks suspicious activity needing correlation.
	Warning
	// Critical marks confirmed malicious or integrity-violating activity.
	Critical
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("severity(%d)", uint8(s))
	}
}

// Alert is a monitor finding reported to the security manager.
type Alert struct {
	// At is the virtual time of detection.
	At sim.VirtualTime
	// Monitor names the reporting monitor.
	Monitor string
	// Resource names the affected resource (initiator, region, core,
	// sensor or peer).
	Resource string
	// Severity grades the finding.
	Severity Severity
	// Signature is the stable detection class, e.g. "bus.security-fault"
	// or "cfi.invalid-edge"; anomaly detections use the ".anomaly"
	// suffix.
	Signature string
	// Detail is a human-readable description.
	Detail string
	// Score is the anomaly z-score, or 0 for signature detections.
	Score float64
}

// Sink receives alerts. The System Security Manager implements Sink.
type Sink interface {
	HandleAlert(Alert)
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(Alert)

// HandleAlert implements Sink.
func (f SinkFunc) HandleAlert(a Alert) { f(a) }

var _ Sink = (SinkFunc)(nil)

// Monitor is the common surface of all resource monitors, used by the
// security manager for periodic observation sampling.
type Monitor interface {
	// Name returns the monitor's evidence source name.
	Name() string
	// Snapshot returns the monitor's current resource-specific gauges.
	Snapshot() map[string]float64
}

// Anomaly is an exponentially weighted moving average detector with a
// z-score threshold. It learns the resource's healthy behaviour during a
// warm-up period and then scores each sample by its distance from the
// learned mean in learned standard deviations.
//
// The zero value is not usable; create with NewAnomaly.
type Anomaly struct {
	alpha     float64
	threshold float64
	warmup    int

	n     int
	mean  float64
	varr  float64
	ready bool
}

// NewAnomaly creates a detector. alpha is the EWMA smoothing factor in
// (0,1]; threshold is the z-score above which a sample is anomalous;
// warmup is the number of samples used for learning before any sample
// can be flagged.
func NewAnomaly(alpha, threshold float64, warmup int) (*Anomaly, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("monitor: anomaly alpha %f out of (0,1]", alpha)
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("monitor: anomaly threshold %f must be positive", threshold)
	}
	if warmup < 1 {
		return nil, fmt.Errorf("monitor: anomaly warmup %d must be >= 1", warmup)
	}
	return &Anomaly{alpha: alpha, threshold: threshold, warmup: warmup}, nil
}

// Observe scores a sample and reports whether it is anomalous. During
// warm-up the score is always 0 and the sample is absorbed into the
// baseline. Anomalous samples are NOT absorbed, so a sustained attack
// does not poison the learned baseline.
func (a *Anomaly) Observe(x float64) (score float64, anomalous bool) {
	if a.n < a.warmup {
		a.absorb(x)
		return 0, false
	}
	sd := math.Sqrt(a.varr)
	if sd < 1e-9 {
		// Degenerate baseline (constant signal): any deviation is
		// anomalous, scored by absolute distance.
		if math.Abs(x-a.mean) > 1e-9 {
			return math.Abs(x - a.mean), true
		}
		a.absorb(x)
		return 0, false
	}
	score = math.Abs(x-a.mean) / sd
	if score >= a.threshold {
		return score, true
	}
	a.absorb(x)
	return score, false
}

func (a *Anomaly) absorb(x float64) {
	a.n++
	if a.n == 1 {
		a.mean = x
		return
	}
	d := x - a.mean
	a.mean += a.alpha * d
	a.varr = (1 - a.alpha) * (a.varr + a.alpha*d*d)
}

// Ready reports whether warm-up has completed.
func (a *Anomaly) Ready() bool { return a.n >= a.warmup }

// Mean returns the learned baseline mean.
func (a *Anomaly) Mean() float64 { return a.mean }

// StdDev returns the learned baseline standard deviation.
func (a *Anomaly) StdDev() float64 { return math.Sqrt(a.varr) }
