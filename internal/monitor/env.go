package monitor

import (
	"fmt"
	"time"

	"cres/internal/hw"
	"cres/internal/sim"
)

// Signature classes emitted by the environmental monitor.
const (
	SigEnvOutOfBand = "env.out-of-band"
	SigEnvDrift     = "env.drift.anomaly"
)

// EnvBand is the permitted operating band for one sensor, relative to its
// baseline. Physical attacks (voltage glitching, overclocking, heating)
// push readings outside the band.
type EnvBand struct {
	// MaxDeviation is the permitted absolute deviation from baseline.
	MaxDeviation float64
}

// EnvConfig configures an EnvMonitor.
type EnvConfig struct {
	// Window is the sampling period.
	Window time.Duration
	// Bands maps sensor names to their permitted bands. Sensors without
	// a band get a default of 10% of baseline.
	Bands map[string]EnvBand
	// DriftThreshold is the z-score threshold for slow-drift detection
	// (default 6).
	DriftThreshold float64
	// Warmup is the number of windows for baseline learning (default 16).
	Warmup int
	// DisableBands turns off the out-of-band (threshold signature)
	// detection, leaving only statistical drift detection.
	DisableBands bool
	// DisableDrift turns off statistical drift detection, leaving only
	// the band check.
	DisableDrift bool
}

// EnvMonitor samples the platform's environmental sensors (voltage,
// clock, temperature — Table I's "system monitoring" row) and raises
// alerts for out-of-band readings (glitch/tamper signatures) and slow
// anomalous drift.
type EnvMonitor struct {
	engine  *sim.Engine
	sensors []*hw.EnvSensor
	sink    Sink
	cfg     EnvConfig

	detectors map[string]*Anomaly
	ticker    *sim.Ticker
	samples   uint64
	alerts    uint64
}

var _ Monitor = (*EnvMonitor)(nil)

// NewEnvMonitor creates and starts an environmental monitor.
func NewEnvMonitor(engine *sim.Engine, sensors []*hw.EnvSensor, cfg EnvConfig, sink Sink) (*EnvMonitor, error) {
	if sink == nil {
		return nil, fmt.Errorf("monitor: env monitor needs a sink")
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("monitor: env monitor needs a positive window")
	}
	if len(sensors) == 0 {
		return nil, fmt.Errorf("monitor: env monitor needs sensors")
	}
	if cfg.DriftThreshold == 0 {
		cfg.DriftThreshold = 6
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 16
	}
	m := &EnvMonitor{
		engine:    engine,
		sensors:   sensors,
		sink:      sink,
		cfg:       cfg,
		detectors: make(map[string]*Anomaly, len(sensors)),
	}
	for _, s := range sensors {
		det, err := NewAnomaly(0.1, cfg.DriftThreshold, cfg.Warmup)
		if err != nil {
			return nil, err
		}
		m.detectors[s.Name] = det
	}
	t, err := sim.NewTicker(engine, cfg.Window, m.sample)
	if err != nil {
		return nil, fmt.Errorf("monitor: env ticker: %w", err)
	}
	m.ticker = t
	return m, nil
}

// Name implements Monitor.
func (m *EnvMonitor) Name() string { return "env-monitor" }

// Stop halts sampling.
func (m *EnvMonitor) Stop() { m.ticker.Stop() }

func (m *EnvMonitor) band(s *hw.EnvSensor) float64 {
	if b, ok := m.cfg.Bands[s.Name]; ok {
		return b.MaxDeviation
	}
	dev := s.Baseline() * 0.10
	if dev < 0 {
		dev = -dev
	}
	return dev
}

func (m *EnvMonitor) sample(at sim.VirtualTime) {
	m.samples++
	for _, s := range m.sensors {
		v := s.Sample()
		dev := v - s.Baseline()
		if dev < 0 {
			dev = -dev
		}
		if !m.cfg.DisableBands && dev > m.band(s) {
			m.alerts++
			m.sink.HandleAlert(Alert{
				At: at, Monitor: m.Name(), Resource: s.Name, Severity: Critical,
				Signature: SigEnvOutOfBand, Score: dev,
				Detail: fmt.Sprintf("%s sensor %s reads %.3f, baseline %.3f, band ±%.3f: physical tamper indicator",
					s.Kind, s.Name, v, s.Baseline(), m.band(s)),
			})
			continue
		}
		if m.cfg.DisableDrift {
			continue
		}
		score, bad := m.detectors[s.Name].Observe(v)
		if bad {
			m.alerts++
			m.sink.HandleAlert(Alert{
				At: at, Monitor: m.Name(), Resource: s.Name, Severity: Warning,
				Signature: SigEnvDrift, Score: score,
				Detail: fmt.Sprintf("%s sensor %s drifting: %.3f vs learned %.3f±%.3f (z=%.1f)",
					s.Kind, s.Name, v, m.detectors[s.Name].Mean(), m.detectors[s.Name].StdDev(), score),
			})
		}
	}
}

// Snapshot implements Monitor.
func (m *EnvMonitor) Snapshot() map[string]float64 {
	out := map[string]float64{
		"samples_total": float64(m.samples),
		"alerts_total":  float64(m.alerts),
	}
	for _, s := range m.sensors {
		out["sensor."+s.Name] = s.Sample()
	}
	return out
}
