package monitor

import (
	"fmt"

	"cres/internal/hw"
	"cres/internal/sim"
)

// Signature classes emitted by the CFI monitor.
const (
	SigCFIUnknownBlock = "cfi.unknown-block"
	SigCFIInvalidEdge  = "cfi.invalid-edge"
)

// CFG is a program's expected control-flow graph: for each basic block,
// the set of legal successor blocks. Entry blocks are successors of the
// pseudo-block 0.
type CFG map[hw.BlockID][]hw.BlockID

// allows reports whether the edge from -> to is legal.
func (g CFG) allows(from, to hw.BlockID) bool {
	for _, s := range g[from] {
		if s == to {
			return true
		}
	}
	return false
}

// known reports whether the block appears in the graph (as a node or a
// successor).
func (g CFG) known(b hw.BlockID) bool {
	if _, ok := g[b]; ok {
		return true
	}
	for _, succs := range g {
		for _, s := range succs {
			if s == b {
				return true
			}
		}
	}
	return false
}

// CFIMonitor checks the stream of executed basic blocks against the
// program's control-flow graph — static and dynamic flow integrity from
// Table I's DETECT row (after Dover and ARMHEx). A block outside the
// graph (injected code) or an illegal edge (hijacked control flow, e.g.
// ROP) raises a Critical alert.
//
// It is an hw.ExecObserver; install with core.SubscribeExec.
type CFIMonitor struct {
	engine *sim.Engine
	sink   Sink
	cfg    CFG

	last       map[string]hw.BlockID // per-core last executed block
	blocks     uint64
	violations uint64
}

var _ hw.ExecObserver = (*CFIMonitor)(nil)
var _ Monitor = (*CFIMonitor)(nil)

// NewCFIMonitor creates a CFI monitor for the given control-flow graph.
func NewCFIMonitor(engine *sim.Engine, cfg CFG, sink Sink) (*CFIMonitor, error) {
	if sink == nil {
		return nil, fmt.Errorf("monitor: cfi monitor needs a sink")
	}
	if len(cfg) == 0 {
		return nil, fmt.Errorf("monitor: cfi monitor needs a control-flow graph")
	}
	return &CFIMonitor{engine: engine, sink: sink, cfg: cfg, last: make(map[string]hw.BlockID)}, nil
}

// Name implements Monitor.
func (m *CFIMonitor) Name() string { return "cfi-monitor" }

// ObserveExec implements hw.ExecObserver.
func (m *CFIMonitor) ObserveExec(core string, block hw.BlockID, at sim.VirtualTime) {
	m.blocks++
	from := m.last[core]
	m.last[core] = block

	if !m.cfg.known(block) {
		m.violations++
		m.sink.HandleAlert(Alert{
			At: at, Monitor: m.Name(), Resource: core, Severity: Critical,
			Signature: SigCFIUnknownBlock,
			Detail:    fmt.Sprintf("core %s executed unknown block %d (injected code)", core, block),
		})
		return
	}
	if !m.cfg.allows(from, block) {
		m.violations++
		m.sink.HandleAlert(Alert{
			At: at, Monitor: m.Name(), Resource: core, Severity: Critical,
			Signature: SigCFIInvalidEdge,
			Detail:    fmt.Sprintf("core %s took illegal edge %d -> %d (control-flow hijack)", core, from, block),
		})
	}
}

// Reset clears the per-core edge state (after a core restart).
func (m *CFIMonitor) Reset(core string) { delete(m.last, core) }

// Snapshot implements Monitor.
func (m *CFIMonitor) Snapshot() map[string]float64 {
	return map[string]float64{
		"blocks_total":     float64(m.blocks),
		"violations_total": float64(m.violations),
	}
}
