package monitor

import (
	"testing"
	"time"

	"cres/internal/hw"
	"cres/internal/sim"
)

// buildMonitoredBus wires a bus with one SRAM region and a subscribed
// BusMonitor in the given configuration.
func buildMonitoredBus(t testing.TB, cfg BusConfig) (*hw.Initiator, *BusMonitor) {
	t.Helper()
	e := sim.New(1)
	var mem hw.Memory
	if _, err := mem.AddRegion("sram", 0x2000_0000, 1<<16, hw.PermRead|hw.PermWrite, hw.WorldNormal); err != nil {
		t.Fatal(err)
	}
	bus := hw.NewBus(e, &mem)
	init := bus.Attach("app-core", hw.WorldNormal)
	var alerts uint64
	m, err := NewBusMonitor(e, cfg, SinkFunc(func(Alert) { alerts++ }))
	if err != nil {
		t.Fatal(err)
	}
	bus.Subscribe(m)
	return init, m
}

// The paper's cost argument requires monitoring cheap enough for every
// transaction: a steady-state read observed by the bus monitor must not
// allocate at all. This is the regression gate for the zero-allocation
// hot path.
func TestMonitoredReadIntoAllocFree(t *testing.T) {
	init, _ := buildMonitoredBus(t, BusConfig{})
	buf := make([]byte, 8)
	addr := hw.Addr(0x2000_0000)
	// Warm: interns the initiator lane and grows internal slices.
	for i := 0; i < 64; i++ {
		if err := init.ReadInto(addr+hw.Addr((i*64)%4096), buf); err != nil {
			t.Fatal(err)
		}
	}

	allocs := testing.AllocsPerRun(1000, func() {
		init.ReadInto(addr, buf) //nolint:errcheck
	})
	if allocs != 0 {
		t.Fatalf("monitored ReadInto allocates %.1f objects per tx, want 0", allocs)
	}
}

// The full configuration — provisioned worlds, watchpoints and rate
// detection — must also keep the steady-state success path free of
// allocations (the ticker is pooled and alerts never fire).
func TestMonitoredReadIntoFullConfigAllocFree(t *testing.T) {
	init, _ := buildMonitoredBus(t, BusConfig{
		ProvisionedWorlds: map[string]hw.World{"app-core": hw.WorldNormal},
		Watchpoints: []Watchpoint{
			{Region: "flash", Kinds: []hw.TxKind{hw.TxWrite}, Allowed: []string{"updater"}},
		},
		RateWindow: time.Millisecond,
	})
	buf := make([]byte, 8)
	addr := hw.Addr(0x2000_0000)
	for i := 0; i < 64; i++ {
		if err := init.ReadInto(addr, buf); err != nil {
			t.Fatal(err)
		}
	}

	allocs := testing.AllocsPerRun(1000, func() {
		init.ReadInto(addr, buf) //nolint:errcheck
	})
	if allocs != 0 {
		t.Fatalf("fully-configured monitored ReadInto allocates %.1f objects per tx, want 0", allocs)
	}
}

// Writes on the same path must stay allocation-free too (single region
// lookup, no Result copy-out).
func TestMonitoredWriteAllocFree(t *testing.T) {
	init, _ := buildMonitoredBus(t, BusConfig{})
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	addr := hw.Addr(0x2000_0000)
	for i := 0; i < 64; i++ {
		if err := init.Write(addr, data); err != nil {
			t.Fatal(err)
		}
	}

	allocs := testing.AllocsPerRun(1000, func() {
		init.Write(addr, data) //nolint:errcheck
	})
	if allocs != 0 {
		t.Fatalf("monitored Write allocates %.1f objects per tx, want 0", allocs)
	}
}

// Result.Data handed to observers must be a live view of the region's
// backing store (no per-read copy), and ReadInto must still deliver the
// bytes into the caller's buffer.
func TestObserverSeesBackingView(t *testing.T) {
	e := sim.New(1)
	var mem hw.Memory
	region, err := mem.AddRegion("sram", 0x1000, 4096, hw.PermRead|hw.PermWrite, hw.WorldNormal)
	if err != nil {
		t.Fatal(err)
	}
	_ = region
	bus := hw.NewBus(e, &mem)
	init := bus.Attach("core", hw.WorldNormal)

	want := []byte{0xde, 0xad, 0xbe, 0xef}
	if err := init.Write(0x1000, want); err != nil {
		t.Fatal(err)
	}

	var observed []byte
	bus.Subscribe(observerFunc(func(tx hw.Transaction, res hw.Result) {
		if tx.Kind == hw.TxRead {
			observed = append(observed[:0], res.Data...)
		}
	}))

	buf := make([]byte, 4)
	if err := init.ReadInto(0x1000, buf); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("ReadInto buf = %x, want %x", buf, want)
		}
		if observed[i] != want[i] {
			t.Fatalf("observer saw %x, want %x", observed, want)
		}
	}
}

type observerFunc func(hw.Transaction, hw.Result)

func (f observerFunc) ObserveTx(tx hw.Transaction, res hw.Result) { f(tx, res) }

// Per-initiator rate lanes are indexed by the bus-assigned dense
// InitiatorID, so alerts must still name the initiator and rate anomalies
// must fire per lane.
func TestRateAnomalyPerLane(t *testing.T) {
	e := sim.New(1)
	var mem hw.Memory
	if _, err := mem.AddRegion("sram", 0, 4096, hw.PermRead, hw.WorldNormal); err != nil {
		t.Fatal(err)
	}
	bus := hw.NewBus(e, &mem)
	quiet := bus.Attach("quiet", hw.WorldNormal)
	noisy := bus.Attach("noisy", hw.WorldNormal)

	var alerts []Alert
	m, err := NewBusMonitor(e, BusConfig{RateWindow: time.Millisecond, RateWarmup: 4},
		SinkFunc(func(a Alert) { alerts = append(alerts, a) }))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	bus.Subscribe(m)

	buf := make([]byte, 4)
	// Learn a steady baseline for both initiators.
	for w := 0; w < 8; w++ {
		for i := 0; i < 10; i++ {
			quiet.ReadInto(0, buf) //nolint:errcheck
			noisy.ReadInto(0, buf) //nolint:errcheck
		}
		e.RunFor(time.Millisecond)
	}
	// Then the noisy initiator floods.
	for i := 0; i < 500; i++ {
		noisy.ReadInto(0, buf) //nolint:errcheck
	}
	e.RunFor(time.Millisecond)

	found := false
	for _, a := range alerts {
		if a.Signature == SigBusRateAnomaly {
			if a.Resource != "noisy" {
				t.Fatalf("rate anomaly attributed to %q, want noisy", a.Resource)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("flood did not raise a rate anomaly")
	}
}
