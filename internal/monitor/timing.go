package monitor

import (
	"fmt"
	"time"

	"cres/internal/hw"
	"cres/internal/sim"
)

// Signature classes emitted by the timing monitor.
const (
	SigTimingMissAnomaly  = "timing.miss-rate.anomaly"
	SigTimingCrossWorld   = "timing.cross-world-eviction"
	SigTimingProbePattern = "timing.probe-pattern"
)

// TimingConfig configures a TimingMonitor.
type TimingConfig struct {
	// Window is the sampling period.
	Window time.Duration
	// MissRateThreshold is the z-score threshold for the miss-rate
	// detector (default 5).
	MissRateThreshold float64
	// Warmup is the number of windows to learn the baseline (default 16).
	Warmup int
	// CrossWorldPerWindow is the absolute number of cross-world
	// evictions per window above which the covert-channel signature
	// fires (default 8).
	CrossWorldPerWindow uint64
}

// TimingMonitor samples the shared cache and detects the
// microarchitectural side-channel activity of Section IV: an anomalous
// miss rate (prime+probe flushing) and elevated cross-world evictions
// (the covert-channel transmission medium itself).
type TimingMonitor struct {
	engine *sim.Engine
	cache  *hw.Cache
	sink   Sink
	cfg    TimingConfig

	prev      hw.CacheStats
	missDet   *Anomaly
	ticker    *sim.Ticker
	samples   uint64
	anomalies uint64
}

var _ Monitor = (*TimingMonitor)(nil)

// NewTimingMonitor creates and starts a timing monitor over the cache.
func NewTimingMonitor(engine *sim.Engine, cache *hw.Cache, cfg TimingConfig, sink Sink) (*TimingMonitor, error) {
	if sink == nil {
		return nil, fmt.Errorf("monitor: timing monitor needs a sink")
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("monitor: timing monitor needs a positive window")
	}
	if cfg.MissRateThreshold == 0 {
		cfg.MissRateThreshold = 5
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 16
	}
	if cfg.CrossWorldPerWindow == 0 {
		cfg.CrossWorldPerWindow = 8
	}
	det, err := NewAnomaly(0.2, cfg.MissRateThreshold, cfg.Warmup)
	if err != nil {
		return nil, err
	}
	m := &TimingMonitor{engine: engine, cache: cache, sink: sink, cfg: cfg, missDet: det}
	t, err := sim.NewTicker(engine, cfg.Window, m.sample)
	if err != nil {
		return nil, fmt.Errorf("monitor: timing ticker: %w", err)
	}
	m.ticker = t
	return m, nil
}

// Name implements Monitor.
func (m *TimingMonitor) Name() string { return "timing-monitor" }

// Stop halts sampling.
func (m *TimingMonitor) Stop() { m.ticker.Stop() }

func (m *TimingMonitor) sample(at sim.VirtualTime) {
	m.samples++
	cur := m.cache.Stats()
	accesses := cur.Accesses - m.prev.Accesses
	misses := cur.Misses - m.prev.Misses
	crossWorld := cur.CrossWorldEvictions - m.prev.CrossWorldEvictions
	m.prev = cur

	if crossWorld >= m.cfg.CrossWorldPerWindow {
		m.anomalies++
		m.sink.HandleAlert(Alert{
			At: at, Monitor: m.Name(), Resource: "llc", Severity: Critical,
			Signature: SigTimingCrossWorld, Score: float64(crossWorld),
			Detail: fmt.Sprintf("%d cross-world cache evictions in window: covert channel activity", crossWorld),
		})
	}

	if accesses == 0 {
		return
	}
	missRate := float64(misses) / float64(accesses)
	score, bad := m.missDet.Observe(missRate)
	if bad {
		m.anomalies++
		m.sink.HandleAlert(Alert{
			At: at, Monitor: m.Name(), Resource: "llc", Severity: Warning,
			Signature: SigTimingMissAnomaly, Score: score,
			Detail: fmt.Sprintf("cache miss rate %.2f deviates from baseline %.2f±%.2f (z=%.1f)",
				missRate, m.missDet.Mean(), m.missDet.StdDev(), score),
		})
	}
}

// Snapshot implements Monitor.
func (m *TimingMonitor) Snapshot() map[string]float64 {
	st := m.cache.Stats()
	out := map[string]float64{
		"samples_total":         float64(m.samples),
		"anomalies_total":       float64(m.anomalies),
		"cache_accesses":        float64(st.Accesses),
		"cache_misses":          float64(st.Misses),
		"cross_world_evictions": float64(st.CrossWorldEvictions),
	}
	if st.Accesses > 0 {
		out["miss_rate"] = float64(st.Misses) / float64(st.Accesses)
	}
	return out
}
