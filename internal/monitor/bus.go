package monitor

import (
	"fmt"
	"time"

	"cres/internal/hw"
	"cres/internal/sim"
)

// Signature classes emitted by the bus monitor.
const (
	SigBusSecurityFault = "bus.security-fault"
	SigBusPermFault     = "bus.perm-fault"
	SigBusWorldMismatch = "bus.world-mismatch"
	SigBusWatchpoint    = "bus.watchpoint"
	SigBusRateAnomaly   = "bus.rate.anomaly"
)

// Watchpoint marks a region whose accesses are policed by the bus
// monitor beyond the hardware checks: any access of a kind in Kinds by
// an initiator not in Allowed raises a Critical alert even if the bus
// itself permitted it.
type Watchpoint struct {
	// Region is the watched region name.
	Region string
	// Kinds is the set of transaction kinds to watch.
	Kinds []hw.TxKind
	// Allowed lists initiators permitted to touch the region.
	Allowed []string
}

func (w *Watchpoint) kindWatched(k hw.TxKind) bool {
	for _, kk := range w.Kinds {
		if kk == k {
			return true
		}
	}
	return false
}

func (w *Watchpoint) initiatorAllowed(name string) bool {
	for _, a := range w.Allowed {
		if a == name {
			return true
		}
	}
	return false
}

// BusConfig configures a BusMonitor.
type BusConfig struct {
	// ProvisionedWorlds maps initiator names to their legitimate
	// security world. A transaction whose in-flight World exceeds the
	// provisioned world is flagged as tampered (the Section IV bus
	// attack).
	ProvisionedWorlds map[string]hw.World
	// Watchpoints are the policed regions.
	Watchpoints []Watchpoint
	// RateWindow is the sampling window for per-initiator transaction
	// rate anomaly detection. Zero disables rate detection.
	RateWindow time.Duration
	// RateThreshold is the z-score threshold (default 6).
	RateThreshold float64
	// RateWarmup is the number of windows used to learn the baseline
	// (default 16).
	RateWarmup int
	// DisableSignatures turns off the signature detections (faults,
	// world mismatch, watchpoints), leaving only statistical rate
	// detection — the anomaly-only ablation of experiment E3b.
	DisableSignatures bool
}

// busLane is the monitor's per-initiator state, indexed by the dense
// hw.Transaction.InitiatorID the bus assigns at Attach time. Keeping it
// in a slice makes the per-transaction bookkeeping a bounds-checked
// increment instead of a map hash of the initiator name.
type busLane struct {
	name  string   // interned on first transaction
	count uint64   // txs in the current rate window
	prov  hw.World // provisioned world, 0 when not configured
	det   *Anomaly
}

// BusMonitor observes every interconnect transaction, raising
// signature-based alerts for faults, attribute tampering and watchpoint
// hits, and statistical alerts for per-initiator rate anomalies.
//
// It is an hw.Observer; install with bus.Subscribe.
type BusMonitor struct {
	engine *sim.Engine
	sink   Sink
	cfg    BusConfig

	lanes  []busLane // per-initiator state, indexed by InitiatorID
	ticker *sim.Ticker

	totalTx     uint64
	totalFaults uint64
	totalAlerts uint64
}

var _ hw.Observer = (*BusMonitor)(nil)
var _ Monitor = (*BusMonitor)(nil)

// NewBusMonitor creates a bus monitor reporting to sink.
func NewBusMonitor(engine *sim.Engine, cfg BusConfig, sink Sink) (*BusMonitor, error) {
	if sink == nil {
		return nil, fmt.Errorf("monitor: bus monitor needs a sink")
	}
	if cfg.RateThreshold == 0 {
		cfg.RateThreshold = 6
	}
	if cfg.RateWarmup == 0 {
		cfg.RateWarmup = 16
	}
	m := &BusMonitor{
		engine: engine,
		sink:   sink,
		cfg:    cfg,
	}
	if cfg.RateWindow > 0 {
		t, err := sim.NewTicker(engine, cfg.RateWindow, m.sampleRates)
		if err != nil {
			return nil, fmt.Errorf("monitor: bus rate ticker: %w", err)
		}
		m.ticker = t
	}
	return m, nil
}

// Name implements Monitor.
func (m *BusMonitor) Name() string { return "bus-monitor" }

// Stop halts periodic rate sampling.
func (m *BusMonitor) Stop() {
	if m.ticker != nil {
		m.ticker.Stop()
	}
}

// lane returns the per-initiator state for tx, growing and interning on
// first sight of a new InitiatorID. The returned pointer is valid until
// the next lane call (the backing slice may be regrown).
func (m *BusMonitor) lane(tx *hw.Transaction) *busLane {
	id := tx.InitiatorID
	for id >= len(m.lanes) {
		m.lanes = append(m.lanes, busLane{})
	}
	ln := &m.lanes[id]
	if ln.name == "" {
		ln.name = tx.Initiator
		if prov, ok := m.cfg.ProvisionedWorlds[tx.Initiator]; ok {
			ln.prov = prov
		}
	}
	return ln
}

// ObserveTx implements hw.Observer.
func (m *BusMonitor) ObserveTx(tx hw.Transaction, res hw.Result) {
	m.totalTx++
	ln := m.lane(&tx)
	ln.count++

	if m.cfg.DisableSignatures {
		if !res.OK {
			m.totalFaults++
		}
		return
	}

	// Steady-state fast path: a successful transaction from an initiator
	// with no provisioned-world constraint, on a bus with no watchpoints,
	// needs no further inspection and formats nothing.
	if res.OK && ln.prov == 0 && len(m.cfg.Watchpoints) == 0 {
		return
	}

	if !res.OK && res.Fault != nil {
		m.totalFaults++
		switch res.Fault.Code {
		case hw.FaultSecurity:
			m.emit(Alert{
				Monitor: m.Name(), Resource: tx.Initiator, Severity: Critical,
				Signature: SigBusSecurityFault,
				Detail:    fmt.Sprintf("%s: %s-world %s at %#x denied (%s)", tx.Initiator, tx.World, tx.Kind, uint64(tx.Addr), res.Fault.Detail),
			})
		case hw.FaultPerm:
			m.emit(Alert{
				Monitor: m.Name(), Resource: tx.Initiator, Severity: Warning,
				Signature: SigBusPermFault,
				Detail:    fmt.Sprintf("%s: %s at %#x violates region permissions", tx.Initiator, tx.Kind, uint64(tx.Addr)),
			})
		}
	}

	// Attribute tampering: the transaction claims a higher world than
	// the initiator was provisioned with. This fires even when the
	// access *succeeded* — that is precisely the attack.
	if prov := ln.prov; prov != 0 && tx.World > prov {
		m.emit(Alert{
			Monitor: m.Name(), Resource: tx.Initiator, Severity: Critical,
			Signature: SigBusWorldMismatch,
			Detail: fmt.Sprintf("%s provisioned %s but issued %s-world %s at %#x: bus attribute tampering",
				tx.Initiator, prov, tx.World, tx.Kind, uint64(tx.Addr)),
		})
	}

	// Watchpoints.
	for i := range m.cfg.Watchpoints {
		wp := &m.cfg.Watchpoints[i]
		if res.Region != wp.Region || !wp.kindWatched(tx.Kind) {
			continue
		}
		if !wp.initiatorAllowed(tx.Initiator) {
			// Resource names the offending initiator so the security
			// manager can isolate it; the watched region is in the
			// detail.
			m.emit(Alert{
				Monitor: m.Name(), Resource: tx.Initiator, Severity: Critical,
				Signature: SigBusWatchpoint,
				Detail:    fmt.Sprintf("unexpected %s of %s by %s at %#x", tx.Kind, wp.Region, tx.Initiator, uint64(tx.Addr)),
			})
		}
	}
}

// sampleRates runs once per rate window. Iterating the lane slice (not a
// map) keeps the order of same-window rate alerts deterministic across
// runs: lanes are visited in bus attach order.
func (m *BusMonitor) sampleRates(at sim.VirtualTime) {
	for i := range m.lanes {
		ln := &m.lanes[i]
		if ln.name == "" {
			continue // id space hole: initiator never issued a transaction
		}
		n := ln.count
		ln.count = 0
		if ln.det == nil {
			det, err := NewAnomaly(0.2, m.cfg.RateThreshold, m.cfg.RateWarmup)
			if err != nil {
				// Config validated in NewBusMonitor; unreachable.
				continue
			}
			ln.det = det
		}
		score, bad := ln.det.Observe(float64(n))
		// Only upward deviations are flooding; a quiet resource (e.g.
		// one the response manager just isolated) is not an attack.
		if bad && float64(n) > ln.det.Mean() {
			m.emit(Alert{
				At: at, Monitor: m.Name(), Resource: ln.name, Severity: Warning,
				Signature: SigBusRateAnomaly, Score: score,
				Detail: fmt.Sprintf("%s issued %d txs in window (baseline %.1f±%.1f, z=%.1f)",
					ln.name, n, ln.det.Mean(), ln.det.StdDev(), score),
			})
		}
	}
}

func (m *BusMonitor) emit(a Alert) {
	if a.At == 0 {
		a.At = m.engine.Now()
	}
	m.totalAlerts++
	m.sink.HandleAlert(a)
}

// Snapshot implements Monitor.
func (m *BusMonitor) Snapshot() map[string]float64 {
	return map[string]float64{
		"tx_total":     float64(m.totalTx),
		"faults_total": float64(m.totalFaults),
		"alerts_total": float64(m.totalAlerts),
	}
}
