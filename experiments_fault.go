package cres

import (
	"fmt"
	"time"

	"cres/internal/attack"
	"cres/internal/attest"
	"cres/internal/cryptoutil"
	"cres/internal/faultmodel"
	"cres/internal/harness"
	"cres/internal/report"
	"cres/internal/scenario"
	"cres/internal/sim"
)

// This file implements E14, the closed-loop recovery experiment: E13
// established that cooperative gossip CONTAINS a worm; E14 asks what
// happens afterwards, and under how much adversity. Every cell runs
// the cooperative fleet through a seeded fault campaign — a lossy,
// reordering, duplicating fabric, devices crashing and rebooting on a
// (seed, index)-derived schedule, the fleet verifier going dark in
// windows — and then either stops at containment ("contain", the E13
// endpoint) or closes the loop ("recover"): a fleet verifier
// re-attests repaired devices over the same faulty fabric with bounded
// retry, neighbours restore quarantined links and forget the recovered
// peer's threat history, and plays re-arm. The sweep crosses fault
// intensity × topology × mode and reports devices saved,
// time-to-full-service, attestation retries, and gossip
// delivered-vs-dropped at the fabric.

// E14 response modes.
const (
	// FaultModeContain stops at containment: quarantined devices stay
	// quarantined, so time-to-full-service pins at the window cap.
	FaultModeContain = "contain"
	// FaultModeRecover closes the loop: repair, re-attest with retry,
	// restore links, forget peers.
	FaultModeRecover = "recover"
)

// FaultModes returns the E14 response modes in presentation order.
func FaultModes() []string { return []string{FaultModeContain, FaultModeRecover} }

// FaultLevel names one fault-intensity point of the E14 sweep. The
// spec's Seed field is ignored — the sweep derives a per-(topology,
// level) seed so the contain and recover cells of one row face the
// SAME fault stream.
type FaultLevel struct {
	Name string
	Spec scenario.FaultSpec
}

// DefaultFaultLevels returns the E14 fault-intensity axis: a fault-free
// control, a mildly lossy fabric, and a hostile one with heavy loss,
// churn and repeated verifier outages.
func DefaultFaultLevels() []FaultLevel {
	return []FaultLevel{
		{Name: "none", Spec: scenario.FaultSpec{}},
		{Name: "low", Spec: scenario.FaultSpec{
			Drop: 0.05, Duplicate: 0.05, Reorder: 0.1,
			CrashFraction: 0.2, VerifierOutages: 1,
		}},
		{Name: "high", Spec: scenario.FaultSpec{
			Drop: 0.2, Duplicate: 0.1, Reorder: 0.2,
			CrashFraction: 0.4, VerifierOutages: 3,
		}},
	}
}

// E14Config parameterises RunE14FaultRecovery.
type E14Config struct {
	// RootSeed seeds the sweep. Engine seeds derive per cell; fault
	// seeds derive per (topology, level) pair so the two modes of a row
	// share their faults.
	RootSeed int64
	// FleetSize is the number of devices per cell (default 10).
	FleetSize int
	// Topologies are the wirings under test (default ring fanout 1,
	// star, random fanout 2 — the E13 quick axis, where cooperative
	// containment is established).
	Topologies []scenario.TopologySpec
	// Dwell is the worm's propagation delay (default 2ms).
	Dwell time.Duration
	// Levels is the fault-intensity axis (default DefaultFaultLevels).
	Levels []FaultLevel
	// Modes are the response modes (default both).
	Modes []string
	// Payload is the worm's payload scenario (default "secure-probe").
	Payload string
	// Window caps the recovery phase, measured from worm launch
	// (default 100ms). A contain cell's time-to-full-service pins here.
	Window time.Duration
	// Quick trims the sweep: two wirings, levels none and high.
	Quick bool
}

// E14Cell is one fleet run: one wiring, one fault level, one mode.
type E14Cell struct {
	Topology string
	Fanout   int
	Level    string
	Mode     string
	// Index is the cell's shard index; Seed its derived engine seed;
	// FaultSeed the row's shared fault-plan seed.
	Index     int
	Seed      int64
	FaultSeed int64
	// Infected counts distinct devices the worm ever compromised;
	// Reinfected the infections of devices that had already recovered
	// once; Saved is FleetSize - Infected.
	Infected, Reinfected, Saved int
	// Blocked counts propagation attempts absorbed by quarantine gates.
	Blocked int
	// Crashes is how many devices the churn schedule took down.
	Crashes int
	// Recovered counts devices repaired and verified clean; Retries the
	// attestation re-challenges the faulty fabric forced.
	Recovered int
	Retries   uint64
	// GossipDelivered and GossipDropped are the fabric's counters for
	// the gossip kind — delivered past all faults vs dropped by them.
	GossipDelivered, GossipDropped uint64
	// TTFS is time-to-full-service from worm launch: every infection
	// repaired and re-attested, every quarantined link restored, every
	// crashed device rebooted. Capped at the window for cells that
	// never get there (all contain cells by construction).
	TTFS time.Duration
	// FullService reports whether the fleet actually reached full
	// service inside the window.
	FullService bool
}

// E14Result is the closed-loop recovery sweep outcome.
type E14Result struct {
	Cells []E14Cell
	Table *report.Table
	// RecoveryDominates reports whether the recover mode reached full
	// service strictly faster than the contain mode in EVERY
	// (topology, level) row.
	RecoveryDominates bool
	// MeanTTFSGain averages, over rows, the contain-vs-recover
	// time-to-full-service difference.
	MeanTTFSGain time.Duration
}

// e14DefaultTopologies is the wiring axis (the E13 quick axis).
func e14DefaultTopologies(n int, quick bool) []scenario.TopologySpec {
	all := []scenario.TopologySpec{
		{Kind: scenario.TopologyRing, Size: n, Fanout: 1},
		{Kind: scenario.TopologyStar, Size: n},
		{Kind: scenario.TopologyRandom, Size: n, Fanout: 2},
	}
	if quick {
		return all[:2]
	}
	return all
}

// RunE14FaultRecovery sweeps the closed recovery loop over fault
// intensity × topology × mode. Cells fan across the harness pool in
// enumeration order — topology-major, then level, then mode — and
// merge by index, so the table is byte-identical at any parallelism.
func RunE14FaultRecovery(cfg E14Config, opts ...RunOption) (*E14Result, error) {
	rc := newRunCfg(opts)
	if cfg.FleetSize == 0 {
		cfg.FleetSize = 10
	}
	if cfg.FleetSize < 3 {
		return nil, fmt.Errorf("e14: fleet of %d cannot demonstrate recovery (want >= 3)", cfg.FleetSize)
	}
	if cfg.Payload == "" {
		cfg.Payload = "secure-probe"
	}
	payload, ok := attack.Get(cfg.Payload)
	if !ok {
		return nil, fmt.Errorf("e14: unknown worm payload %q", cfg.Payload)
	}
	if cfg.Dwell <= 0 {
		cfg.Dwell = 2 * time.Millisecond
	}
	if cfg.Window <= 0 {
		cfg.Window = 100 * time.Millisecond
	}
	if cfg.Topologies == nil {
		cfg.Topologies = e14DefaultTopologies(cfg.FleetSize, cfg.Quick)
	}
	if cfg.Levels == nil {
		cfg.Levels = DefaultFaultLevels()
		if cfg.Quick {
			cfg.Levels = []FaultLevel{cfg.Levels[0], cfg.Levels[2]}
		}
	}
	if cfg.Modes == nil {
		cfg.Modes = FaultModes()
	}

	topos := make([]*scenario.CompiledTopology, len(cfg.Topologies))
	for i, ts := range cfg.Topologies {
		if ts.Kind == scenario.TopologyRandom && ts.Seed == 0 {
			ts.Seed = harness.ShardSeed(cfg.RootSeed, i)
		}
		ct, err := ts.Compile()
		if err != nil {
			return nil, fmt.Errorf("e14: topology %d: %w", i, err)
		}
		topos[i] = ct
	}

	// One fault plan per (topology, level) ROW, seeded by the row's
	// position offset far from the engine-seed stream: both modes of a
	// row face identical link fates, churn and outages.
	type cellSpec struct {
		topo      *scenario.CompiledTopology
		level     FaultLevel
		mode      string
		plan      *faultmodel.Plan
		faultSeed int64
	}
	var specs []cellSpec
	for ti, t := range topos {
		for li, lv := range cfg.Levels {
			row := ti*len(cfg.Levels) + li
			spec := lv.Spec
			spec.Seed = harness.ShardSeed(cfg.RootSeed, 1000+row)
			plan, err := spec.Compile()
			if err != nil {
				return nil, fmt.Errorf("e14: fault level %q: %w", lv.Name, err)
			}
			for _, m := range cfg.Modes {
				specs = append(specs, cellSpec{topo: t, level: lv, mode: m, plan: plan, faultSeed: spec.Seed})
			}
		}
	}

	cells, err := harness.Map(rc.pool, len(specs), cfg.RootSeed, func(sh harness.Shard) (E14Cell, error) {
		sp := specs[sh.Index]
		cell, err := runFaultCell(sp.topo, cfg.Dwell, sp.mode, payload, sh.Seed, sp.plan, cfg.Window)
		if err != nil {
			return E14Cell{}, fmt.Errorf("e14 %s/f%d/%s/%s: %w", sp.topo.Spec.Kind, sp.topo.Spec.Fanout, sp.level.Name, sp.mode, err)
		}
		cell.Level = sp.level.Name
		cell.Index = sh.Index
		cell.Seed = sh.Seed
		cell.FaultSeed = sp.faultSeed
		return cell, nil
	})
	if err != nil {
		return nil, err
	}

	res := &E14Result{Cells: cells, RecoveryDominates: true}
	ttfs := make(map[int]map[string]time.Duration) // row index -> mode -> TTFS
	for _, c := range cells {
		row := c.Index / len(cfg.Modes)
		if ttfs[row] == nil {
			ttfs[row] = make(map[string]time.Duration)
		}
		ttfs[row][c.Mode] = c.TTFS
	}
	rows := 0
	var gain time.Duration
	for _, byMode := range ttfs {
		contain, hasContain := byMode[FaultModeContain]
		rec, hasRecover := byMode[FaultModeRecover]
		if !hasContain || !hasRecover {
			continue
		}
		rows++
		gain += contain - rec
		if rec >= contain {
			res.RecoveryDominates = false
		}
	}
	if rows > 0 {
		res.MeanTTFSGain = gain / time.Duration(rows)
	}

	t := report.NewTable(
		fmt.Sprintf("E14 — Closed-loop recovery under fault injection: %q worm, %d-device fleets, %v window (root seed %d)",
			cfg.Payload, cfg.FleetSize, cfg.Window, cfg.RootSeed),
		"Topology", "Fanout", "Faults", "Mode", "Infected", "Reinf", "Saved", "Crashes",
		"Recovered", "Retries", "Gossip d/x", "TTFS", "Full svc")
	for _, c := range cells {
		fanout := "-"
		if c.Topology == scenario.TopologyRing || c.Topology == scenario.TopologyRandom {
			fanout = report.I(c.Fanout)
		}
		t.AddRow(c.Topology, fanout, c.Level, c.Mode,
			report.I(c.Infected), report.I(c.Reinfected), report.I(c.Saved), report.I(c.Crashes),
			report.I(c.Recovered), fmt.Sprintf("%d", c.Retries),
			fmt.Sprintf("%d/%d", c.GossipDelivered, c.GossipDropped),
			c.TTFS.String(), yn(c.FullService))
	}
	t.AddRow("TOTAL", "-", "-", "recover vs contain", "-", "-", "-", "-", "-", "-", "-",
		fmt.Sprintf("-%v mean", res.MeanTTFSGain), "dominates: "+yn(res.RecoveryDominates))
	res.Table = t
	return res, nil
}

// runFaultCell runs one E14 cell: containment through runSwarmCell
// (cooperative mode, faults wired), then — in recover mode — the
// closed recovery loop until full service or the window cap. Both
// modes simulate the same total span, so fabric and churn statistics
// stay comparable.
func runFaultCell(topo *scenario.CompiledTopology, dwell time.Duration, mode string, payload attack.Scenario, seed int64, plan *faultmodel.Plan, window time.Duration) (E14Cell, error) {
	cell13, rig, outbreak, err := runSwarmCell(topo, dwell, SwarmCooperative, payload, seed, plan, nil)
	if err != nil {
		return E14Cell{}, err
	}
	cell := E14Cell{
		Topology: cell13.Topology,
		Fanout:   cell13.Fanout,
		Mode:     mode,
		Crashes:  len(plan.CrashSchedule(topo.Size())),
	}
	// runSwarmCell simulated exactly the containment window from the
	// worm's launch, so "now - that window" is the launch instant every
	// E14 clock measures from.
	containWindow := time.Duration(topo.Size())*dwell + 10*time.Millisecond
	launch := rig.eng.Now().Add(-containWindow)

	var ctrl *recoveryController
	if mode == FaultModeRecover {
		ctrl, err = newRecoveryController(rig, outbreak, plan, launch, window)
		if err != nil {
			return E14Cell{}, err
		}
		ctrl.start()
	}
	rig.eng.RunUntil(launch.Add(window + 5*time.Millisecond))

	cell.Infected = outbreak.EverInfections()
	cell.Reinfected = outbreak.Reinfections()
	cell.Saved = topo.Size() - cell.Infected
	cell.Blocked = outbreak.Blocked()
	cell.TTFS = window
	if ctrl != nil {
		cell.Recovered = ctrl.recovered()
		cell.Retries = ctrl.verifier.Retries()
		if ctrl.fullAt >= 0 {
			cell.TTFS = ctrl.fullAt
			cell.FullService = true
		}
	}
	ks := rig.net.KindStats(GossipKind)
	cell.GossipDelivered, cell.GossipDropped = ks.Delivered, ks.Dropped
	return cell, nil
}

// recoveryController closes the loop on one fleet: from the end of the
// containment window it sweeps the fleet in rounds, repairing infected
// devices (isolation lifted, plays re-armed, outbreak bookkeeping
// cleared), re-attesting them through a fleet verifier over the faulty
// fabric with bounded seeded retry, and — on a Trusted verdict —
// restoring the neighbours' quarantined links and forgetting the
// recovered peer's threat history. Still-infected devices keep
// re-propagating each round, so recovery races live infections; the
// repair step cuts any still-open link towards an infected neighbour
// first, so the race always makes progress.
type recoveryController struct {
	rig      *swarmRig
	outbreak *attack.Outbreak
	plan     *faultmodel.Plan
	verifier *attest.Verifier
	launch   sim.VirtualTime
	deadline sim.VirtualTime

	repaired []bool
	verified []bool
	pending  []bool
	fullAt   time.Duration // TTFS once reached, else -1
}

// recoveryRound is the sweep period; repairsPerRound paces the repair
// crew, spreading recovery over several rounds instead of resolving the
// whole fleet in one instantaneous sweep.
const (
	recoveryRound   = 2 * time.Millisecond
	repairsPerRound = 2
)

// newRecoveryController wires the fleet verifier into the rig: a new
// network node, mutual trust with every device, an attester per device,
// and an appraisal policy built from the fleet's own attestation keys
// and event logs.
func newRecoveryController(rig *swarmRig, outbreak *attack.Outbreak, plan *faultmodel.Plan, launch sim.VirtualTime, window time.Duration) (*recoveryController, error) {
	n := len(rig.devs)
	vkey, err := cryptoutil.KeyPairFromSeed(cryptoutil.DeriveKey([]byte("e14-verifier"), "fleet-verifier", "", 32))
	if err != nil {
		return nil, err
	}
	vep, err := rig.net.AddNode("fleet-verifier", vkey)
	if err != nil {
		return nil, err
	}
	policy := &attest.Policy{
		AIKs:                make(map[string]cryptoutil.PublicKey, n),
		AllowedMeasurements: make(map[cryptoutil.Digest]bool),
	}
	for _, dev := range rig.devs {
		vep.Trust(dev.Name, dev.Endpoint.PublicKey())
		dev.Endpoint.Trust("fleet-verifier", vep.PublicKey())
		attest.NewAttester(dev.TPM, dev.Endpoint)
		policy.AIKs[dev.Name] = dev.TPM.AIKPublic()
		for _, entry := range dev.TPM.EventLog() {
			policy.AllowedMeasurements[entry.Measurement] = true
		}
	}
	c := &recoveryController{
		rig:      rig,
		outbreak: outbreak,
		plan:     plan,
		launch:   launch,
		deadline: launch.Add(window),
		repaired: make([]bool, n),
		verified: make([]bool, n),
		pending:  make([]bool, n),
		fullAt:   -1,
	}
	c.verifier = attest.NewVerifier(rig.eng, vep, policy, c.onAppraisal)
	return c, nil
}

// start schedules the first recovery round.
func (c *recoveryController) start() {
	c.rig.eng.MustSchedule(recoveryRound, func() { c.round() })
}

// round is one recovery sweep. It keeps rescheduling itself until full
// service or the window deadline.
func (c *recoveryController) round() {
	if c.fullAt >= 0 || c.rig.eng.Now() >= c.deadline {
		return
	}
	// The worm does not wait for the verifier: live infections keep
	// trying to spread every round, so recovery races re-infection.
	for i := range c.rig.devs {
		if c.outbreak.IsInfected(i) {
			c.outbreak.Propagate(i) //nolint:errcheck // index is in range by construction
		}
	}
	if !c.plan.VerifierDown(c.rig.eng.Now().Sub(c.launch)) {
		repairs := 0
		for i := range c.rig.devs {
			if c.outbreak.IsInfected(i) && repairs < repairsPerRound {
				c.repair(i)
				repairs++
				continue
			}
			// Re-challenge repaired devices whose earlier attestation
			// concluded in a timeout (crashed device, retries exhausted).
			if c.repaired[i] && !c.verified[i] && !c.pending[i] {
				c.challenge(i)
			}
		}
		c.checkFullService()
	}
	c.rig.eng.MustSchedule(recoveryRound, func() { c.round() })
}

// repair fixes one infected device: cut any still-open link towards an
// infected neighbour (so the repair cannot be undone by the next
// propagation round), lift the local isolation and re-arm the plays,
// clear the outbreak bookkeeping, then queue re-attestation.
func (c *recoveryController) repair(i int) {
	dev := c.rig.devs[i]
	for _, j := range c.rig.topo.Neighbors(i) {
		if c.outbreak.IsInfected(j) && c.rig.LinkUp(i, j) {
			dev.Responder.QuarantineLink(c.rig.net, dev.Name, swarmNodeName(j), //nolint:errcheck // recorded via action log
				"recovery sweep: neighbour still infected")
		}
	}
	if isolated := dev.Responder.Isolated(); len(isolated) > 0 {
		for _, res := range isolated {
			dev.Recover(res, "fleet recovery sweep") //nolint:errcheck // restoring a known-isolated initiator
		}
	} else if dev.SSM != nil {
		dev.SSM.MarkRecovered("fleet recovery sweep")
	}
	c.outbreak.MarkRecovered(i)
	c.repaired[i] = true
	c.challenge(i)
}

// challenge re-attests device i over the faulty fabric with the plan's
// deterministic backoff.
func (c *recoveryController) challenge(i int) {
	dev := c.rig.devs[i]
	c.pending[i] = true
	err := c.verifier.ChallengeWithRetry(dev.Name, attest.RetryPolicy{
		Attempts: 3,
		Timeout:  2 * time.Millisecond,
		Backoff: func(k int) time.Duration {
			return c.plan.Backoff("attest|"+dev.Name, k)
		},
	})
	if err != nil {
		c.pending[i] = false
	}
}

// onAppraisal consumes verifier verdicts. A trusted device gets its
// links restored and its threat history forgotten fleet-wide; a timeout
// leaves the device for a later round's re-challenge.
func (c *recoveryController) onAppraisal(a attest.Appraisal) {
	i := -1
	for j, dev := range c.rig.devs {
		if dev.Name == a.Device {
			i = j
			break
		}
	}
	if i < 0 {
		return
	}
	c.pending[i] = false
	if a.Verdict != attest.VerdictTrusted {
		return
	}
	// A device re-infected while its appraisal was in flight is not
	// clean — leave it for the next sweep.
	if c.outbreak.IsInfected(i) {
		return
	}
	c.verified[i] = true
	name := c.rig.devs[i].Name
	for _, j := range c.rig.topo.Neighbors(i) {
		peer := c.rig.devs[j]
		// Only restore towards neighbours that are themselves clean:
		// links towards live infections stay cut until THEY re-attest.
		if !c.outbreak.IsInfected(j) {
			peer.Responder.RestoreLink(c.rig.net, peer.Name, name, "neighbour re-attested clean") //nolint:errcheck // not every neighbour cut this link
			c.rig.devs[i].Responder.RestoreLink(c.rig.net, name, peer.Name, "both sides clean")   //nolint:errcheck // not every link was cut
		}
		peer.ForgetPeer(name)
	}
	c.checkFullService()
}

// recovered counts devices repaired AND verified clean.
func (c *recoveryController) recovered() int {
	n := 0
	for i := range c.verified {
		if c.verified[i] {
			n++
		}
	}
	return n
}

// checkFullService declares time-to-full-service the first instant no
// infection is active, every repaired device is verified clean, every
// quarantined link is restored, and every crashed device is back up.
// (No infection active implies every ever-infected device has been
// repaired: MarkRecovered only happens in repair.)
func (c *recoveryController) checkFullService() {
	if c.fullAt >= 0 || c.outbreak.ActiveInfections() > 0 {
		return
	}
	for i, dev := range c.rig.devs {
		if c.repaired[i] && !c.verified[i] {
			return
		}
		if len(dev.Responder.QuarantinedLinks()) > 0 {
			return
		}
		if c.rig.net.NodeDown(dev.Name) {
			return
		}
	}
	c.fullAt = c.rig.eng.Now().Sub(c.launch)
}
