package cres

import (
	"strings"
	"testing"
	"time"

	"cres/internal/attack"
	"cres/internal/m2m"
	"cres/internal/sim"
)

// coopPair builds two cooperating CRES devices on one engine/network.
func coopPair(t *testing.T) (*sim.Engine, *m2m.Network, *Device, *Device) {
	t.Helper()
	eng := sim.New(3)
	net := m2m.NewNetwork(eng, m2m.Config{})
	mk := func(name string) *Device {
		dev, err := NewDevice(name, WithEngine(eng), WithNetwork(net))
		if err != nil {
			t.Fatal(err)
		}
		return dev
	}
	a, b := mk("node-00"), mk("node-01")
	a.Endpoint.Trust(b.Name, b.Endpoint.PublicKey())
	b.Endpoint.Trust(a.Name, a.Endpoint.PublicKey())
	if err := a.EnableCooperation(b.Name); err != nil {
		t.Fatal(err)
	}
	if err := b.EnableCooperation(a.Name); err != nil {
		t.Fatal(err)
	}
	for _, d := range []*Device{a, b} {
		if _, err := d.Boot(); err != nil {
			t.Fatal(err)
		}
	}
	return eng, net, a, b
}

// TestCooperationQuarantinesCompromisedNeighbour is the cooperative
// response end to end: A is compromised, detects it, gossips; B
// ingests the digest, raises posture and cuts the link — all before
// any worm dwell could expire.
func TestCooperationQuarantinesCompromisedNeighbour(t *testing.T) {
	eng, net, a, b := coopPair(t)
	if err := Launch(a, attack.SecureProbe{}); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(5 * time.Millisecond)

	if b.SSM.PeerDigestsIngested() == 0 {
		t.Fatal("B ingested no digests")
	}
	if net.LinkUp(a.Name, b.Name) {
		t.Fatal("link A-B still up after critical digest")
	}
	if got := b.Responder.QuarantinedLinks(); len(got) != 1 || !strings.Contains(got[0], a.Name) {
		t.Fatalf("B's quarantined links = %v", got)
	}
	// The cut and the peer evidence are both in B's forensic record.
	rep := b.ForensicReport(0, b.Now())
	if rep.PeerAlerts == 0 {
		t.Fatal("no peer evidence in B's breach report")
	}
	found := false
	for _, rec := range rep.Timeline {
		if strings.Contains(rec.Detail, "quarantine-link") || strings.Contains(rec.Detail, a.Name) {
			found = true
		}
	}
	if !found {
		t.Fatal("link cut missing from B's forensic timeline")
	}
	// A, the compromised side, must NOT have cut anything itself.
	if got := a.Responder.QuarantinedLinks(); len(got) != 0 {
		t.Fatalf("compromised A cut links itself: %v", got)
	}
}

// TestGossipForwardsBeyondNeighbours pins the epidemic part: on a
// 3-node line A-B-C, C is not A's neighbour yet still learns of A's
// compromise through B's forward.
func TestGossipForwardsBeyondNeighbours(t *testing.T) {
	eng := sim.New(5)
	net := m2m.NewNetwork(eng, m2m.Config{})
	var devs []*Device
	for _, name := range []string{"node-00", "node-01", "node-02"} {
		dev, err := NewDevice(name, WithEngine(eng), WithNetwork(net))
		if err != nil {
			t.Fatal(err)
		}
		devs = append(devs, dev)
	}
	trust := func(x, y *Device) {
		x.Endpoint.Trust(y.Name, y.Endpoint.PublicKey())
		y.Endpoint.Trust(x.Name, x.Endpoint.PublicKey())
	}
	trust(devs[0], devs[1])
	trust(devs[1], devs[2])
	if err := devs[0].EnableCooperation(devs[1].Name); err != nil {
		t.Fatal(err)
	}
	if err := devs[1].EnableCooperation(devs[0].Name, devs[2].Name); err != nil {
		t.Fatal(err)
	}
	if err := devs[2].EnableCooperation(devs[1].Name); err != nil {
		t.Fatal(err)
	}
	for _, d := range devs {
		if _, err := d.Boot(); err != nil {
			t.Fatal(err)
		}
	}
	if err := Launch(devs[0], attack.SecureProbe{}); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(5 * time.Millisecond)

	if devs[2].SSM.PeerDigestsIngested() == 0 {
		t.Fatal("C never heard of A's compromise")
	}
	// C quarantines nothing: the origin is not its direct peer.
	if got := devs[2].Responder.QuarantinedLinks(); len(got) != 0 {
		t.Fatalf("C cut links towards a non-neighbour: %v", got)
	}
	// B, the direct neighbour, does cut.
	if got := devs[1].Responder.QuarantinedLinks(); len(got) != 1 {
		t.Fatalf("B's quarantined links = %v, want the A link", got)
	}
}

func TestEnableCooperationRequirements(t *testing.T) {
	base, err := NewDevice("b", WithArchitecture(ArchBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if err := base.EnableCooperation("x"); err == nil {
		t.Error("baseline device enabled cooperation")
	}
	lone, err := NewDevice("l")
	if err != nil {
		t.Fatal(err)
	}
	if err := lone.EnableCooperation("x"); err == nil {
		t.Error("network-less device enabled cooperation")
	}
}

// dropFirstN drops the first n deliveries on every link, then passes
// everything — the simplest lossy fabric that defeats one-shot gossip
// but not redundant gossip.
type dropFirstN struct{ n, seen int }

func (d *dropFirstN) Fate(from, to string) m2m.Fate {
	d.seen++
	if d.seen <= d.n {
		return m2m.Fate{}
	}
	return m2m.Fate{Deliveries: []time.Duration{0}}
}

// TestGossipRedundancySurvivesLoss: with the first copy of every
// digest eaten by the fabric, plain gossip goes deaf but redundant
// gossip still raises the neighbour's posture — and the duplicates the
// redundancy creates never inflate the evidence count.
func TestGossipRedundancySurvivesLoss(t *testing.T) {
	eng, net, a, b := coopPair(t)
	a.SetGossipRedundancy(2, nil)
	// Drop the first two deliveries: the original and the first
	// re-send. The second re-send (2ms) gets through.
	net.SetFaultInjector(&dropFirstN{n: 2})
	if err := Launch(a, attack.SecureProbe{}); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(10 * time.Millisecond)
	if b.SSM.PeerDigestsIngested() == 0 {
		t.Fatal("redundant gossip never got through the lossy fabric")
	}
	if net.LinkUp(a.Name, b.Name) {
		t.Fatal("B never quarantined the compromised neighbour")
	}
	// Redundancy means B may receive the same digest several times once
	// the fabric opens; the SSM must have ingested each (origin,
	// signature, severity) at most once.
	if got := b.SSM.PeerDigestsIngested(); got > 8 {
		t.Fatalf("ingested %d digests — duplicates not absorbed", got)
	}
}

// TestForgetPeerRearmsQuarantine drives a full recover-and-reinfect
// cycle at device level: quarantine, restore+forget, re-compromise,
// quarantine again.
func TestForgetPeerRearmsQuarantine(t *testing.T) {
	eng, net, a, b := coopPair(t)
	if err := Launch(a, attack.SecureProbe{}); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(5 * time.Millisecond)
	if net.LinkUp(a.Name, b.Name) {
		t.Fatal("setup: link not cut")
	}
	// Fleet-side recovery: A is repaired and verified, B restores the
	// link and forgets what it held against A.
	if err := a.Recover("app-core", "fleet repair"); err != nil {
		t.Fatal(err)
	}
	if err := b.Responder.RestoreLink(net, b.Name, a.Name, "neighbour re-attested"); err != nil {
		t.Fatal(err)
	}
	b.ForgetPeer(a.Name)
	if b.SSM.PeerScore(a.Name) != 0 {
		t.Fatalf("B still scores A at %v after forget", b.SSM.PeerScore(a.Name))
	}
	if !net.LinkUp(a.Name, b.Name) {
		t.Fatal("link not restored")
	}
	// A is compromised AGAIN: the fresh outbreak must gossip and cut
	// the link a second time.
	if err := Launch(a, attack.SecureProbe{}); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(5 * time.Millisecond)
	if net.LinkUp(a.Name, b.Name) {
		t.Fatal("re-compromise did not re-quarantine the link")
	}
}
