// Smartgrid: a substation protection controller under attack.
//
// The device runs four services — the safety-critical protection relay
// (with a redundant backup controller), telemetry, remote management and
// a local HMI. A man-in-the-middle first tries to inject breaker
// commands (defeated by message authentication), then a compromised
// application attempts control-flow hijack (contained by isolation).
// The protection relay never goes down; the same attack on the baseline
// architecture forces a full reboot with a 500ms protection outage —
// an eternity for a protection function.
//
//	go run ./examples/smartgrid
package main

import (
	"fmt"
	"log"
	"time"

	"cres"
	"cres/internal/attack"
	"cres/internal/hw"
	"cres/internal/response"
	"cres/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func substationServices() []response.Service {
	return []response.Service{
		{Name: "protection-relay", Critical: true, Resources: []string{"app-core"}, Fallbacks: []string{"backup-controller"}},
		{Name: "telemetry", Resources: []string{"app-core", "m2m-link"}},
		{Name: "remote-management", Resources: []string{"m2m-link"}},
		{Name: "local-hmi", Resources: []string{"app-core"}},
	}
}

func run() error {
	for _, arch := range []cres.Architecture{cres.ArchCRES, cres.ArchBaseline} {
		fmt.Printf("=== substation controller, %s architecture ===\n", arch)
		if err := runArch(arch); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func runArch(arch cres.Architecture) error {
	tb, err := cres.NewAttackTestbed(arch, 99)
	if err != nil {
		return err
	}
	dev := tb.Device()

	// The breaker actuator: fail-safe value 0 (open / tripped).
	breaker := hw.NewActuator("breaker-bay3", 0)
	dev.AddActuator(breaker)

	// Grid protection workload: sample grid frequency, trip the breaker
	// if it leaves the band. The simulated grid runs at 50Hz +/- noise.
	gridFreq := hw.NewEnvSensor(dev.Engine, hw.SensorClock, "grid-freq", 50.0, 0.05)
	trips := 0
	protection, err := sim.NewTicker(dev.Engine, 500*time.Microsecond, func(at sim.VirtualTime) {
		up, _ := dev.Degrader.Up("protection-relay")
		if !up {
			return // protection outage: nobody watches the grid
		}
		f := gridFreq.Sample()
		if f < 49.5 || f > 50.5 {
			breaker.Apply(at, 1) // trip command
			trips++
		}
	})
	if err != nil {
		return err
	}
	defer protection.Stop()

	if err := tb.Warm(15 * time.Millisecond); err != nil {
		return err
	}

	// Phase 1: MITM tries to forge breaker commands.
	if err := (attack.M2MMITM{Messages: 6}).Launch(tb.AttackTarget()); err != nil {
		return err
	}
	dev.RunFor(5 * time.Millisecond)
	fmt.Printf("phase 1 (MITM): endpoint rejected %d forged messages\n", dev.Endpoint.Rejected())

	// Phase 2: code injection in the application.
	if err := (attack.CodeInjection{}).Launch(tb.AttackTarget()); err != nil {
		return err
	}
	if arch == cres.ArchBaseline {
		// The baseline's only move, once the operator notices: reboot.
		dev.Engine.MustSchedule(20*time.Millisecond, func() {
			dev.Baseline.Reboot("operator power cycle", nil)
		})
	}

	// Measure protection-relay availability over the next 600ms.
	samples, upSamples := 0, 0
	avail, err := sim.NewTicker(dev.Engine, time.Millisecond, func(sim.VirtualTime) {
		samples++
		if up, _ := dev.Degrader.Up("protection-relay"); up {
			upSamples++
		}
	})
	if err != nil {
		return err
	}
	dev.RunFor(600 * time.Millisecond)
	avail.Stop()

	fmt.Printf("phase 2 (code injection): protection-relay availability %.1f%% over 600ms\n",
		100*float64(upSamples)/float64(samples))
	if dev.SSM != nil {
		fmt.Printf("SSM state: %s; isolated: %v; responses: %d\n",
			dev.SSM.State(), dev.Responder.Isolated(), dev.SSM.ResponsesFired())
	} else {
		fmt.Printf("baseline: reboots=%d (all services dropped during reboot)\n", dev.Baseline.Reboots())
	}
	fmt.Printf("breaker trips executed: %d; breaker locked: %v\n", trips, breaker.Locked())
	return nil
}
