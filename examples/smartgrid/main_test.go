package main

// Example replays the example's run() and pins its COMPLETE output.
// This is the anti-rot gate for runnable documentation: if an API or
// behaviour change shifts what this program prints, 'go test
// ./examples/...' fails with a readable diff instead of the README
// silently lying. The output is all virtual-time quantities, so it is
// stable across hosts, Go releases and -parallel settings.
func Example() {
	if err := run(); err != nil {
		panic(err)
	}
	// Output:
	// === substation controller, cres architecture ===
	// phase 1 (MITM): endpoint rejected 7 forged messages
	// phase 2 (code injection): protection-relay availability 100.0% over 600ms
	// SSM state: degraded; isolated: [app-core]; responses: 1
	// breaker trips executed: 0; breaker locked: false
	//
	// === substation controller, baseline architecture ===
	// phase 1 (MITM): endpoint rejected 7 forged messages
	// phase 2 (code injection): protection-relay availability 16.7% over 600ms
	// baseline: reboots=1 (all services dropped during reboot)
	// breaker trips executed: 0; breaker locked: false
	//
}
