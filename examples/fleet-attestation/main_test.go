package main

// Example replays the example's run() and pins its COMPLETE output.
// This is the anti-rot gate for runnable documentation: if an API or
// behaviour change shifts what this program prints, 'go test
// ./examples/...' fails with a readable diff instead of the README
// silently lying. The output is all virtual-time quantities, so it is
// stable across hosts, Go releases and -parallel settings.
func Example() {
	if err := run(); err != nil {
		panic(err)
	}
	// Output:
	// challenging 12 devices...
	//   device-0     trusted    quote verified; all measurements known good
	//   device-1     trusted    quote verified; all measurements known good
	//   device-2     trusted    quote verified; all measurements known good
	//   device-3     untrusted  attest: policy violation: unknown measurement e5edc088 (firmware (tampered)) in PCR 2
	//   device-4     trusted    quote verified; all measurements known good
	//   device-5     trusted    quote verified; all measurements known good
	//   device-6     trusted    quote verified; all measurements known good
	//   device-8     trusted    quote verified; all measurements known good
	//   device-9     trusted    quote verified; all measurements known good
	//   device-10    trusted    quote verified; all measurements known good
	//   device-11    trusted    quote verified; all measurements known good
	//   device-7     timeout    no quote before deadline
	//
	// fleet sweep complete in 100ms (virtual): 10 trusted, 1 untrusted, 1 timeout
}
