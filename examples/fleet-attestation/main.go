// Fleet attestation: an operator-side verifier challenges a fleet of
// field devices over the M2M network. Two devices booted tampered
// firmware; measured boot puts the evidence in their TPM quotes and the
// verifier catches both — including one whose network stack lies, which
// simply times out.
//
//	go run ./examples/fleet-attestation
package main

import (
	"fmt"
	"log"
	"time"

	"cres/internal/attest"
	"cres/internal/cryptoutil"
	"cres/internal/m2m"
	"cres/internal/sim"
	"cres/internal/tpm"
)

const fleetSize = 12

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	engine := sim.New(2026)
	net := m2m.NewNetwork(engine, m2m.Config{Latency: 800 * time.Microsecond, Loss: 0.01})

	// Known-good measurements (the golden values of this firmware
	// release).
	rom := cryptoutil.Sum([]byte("fleet boot rom v1"))
	fw := cryptoutil.Sum([]byte("fleet firmware v9"))
	pol := cryptoutil.Sum([]byte("fleet policy v2"))
	implant := cryptoutil.Sum([]byte("bootkit implant"))

	// Operator verifier.
	vkey, err := cryptoutil.KeyPairFromSeed(cryptoutil.DeriveKey([]byte("op"), "verifier", "", 32))
	if err != nil {
		return err
	}
	vep, err := net.AddNode("verifier", vkey)
	if err != nil {
		return err
	}
	policy := &attest.Policy{
		AIKs:                make(map[string]cryptoutil.PublicKey),
		AllowedMeasurements: map[cryptoutil.Digest]bool{rom: true, fw: true, pol: true},
	}
	verifier := attest.NewVerifier(engine, vep, policy, func(a attest.Appraisal) {
		fmt.Printf("  %-12s %-10s %s\n", a.Device, a.Verdict, a.Reason)
	})

	// Field devices. Device-3 boots an implant; device-7 is offline.
	for i := 0; i < fleetSize; i++ {
		name := fmt.Sprintf("device-%d", i)
		dkey, err := cryptoutil.KeyPairFromSeed(cryptoutil.DeriveKey([]byte("dev"), name, "", 32))
		if err != nil {
			return err
		}
		dep, err := net.AddNode(name, dkey)
		if err != nil {
			return err
		}
		dep.Trust("verifier", vep.PublicKey())
		vep.Trust(name, dep.PublicKey())

		tp, err := tpm.New(cryptoutil.NewDeterministicEntropy([]byte(name)))
		if err != nil {
			return err
		}
		tp.Extend(tpm.PCRBootROM, rom, "boot rom")
		if i == 3 {
			tp.Extend(tpm.PCRFirmware, implant, "firmware (tampered)")
		} else {
			tp.Extend(tpm.PCRFirmware, fw, "firmware v9")
		}
		tp.Extend(tpm.PCRPolicy, pol, "policy v2")

		if i != 7 { // device-7 never answers
			attest.NewAttester(tp, dep)
		}
		policy.AIKs[name] = tp.AIKPublic()
	}

	// Challenge the whole fleet.
	fmt.Printf("challenging %d devices...\n", fleetSize)
	start := engine.Now()
	for i := 0; i < fleetSize; i++ {
		if err := verifier.Challenge(fmt.Sprintf("device-%d", i)); err != nil {
			return err
		}
	}
	engine.RunFor(100 * time.Millisecond)
	verifier.TimeoutPending()

	trusted, untrusted, timeout := 0, 0, 0
	for _, a := range verifier.Appraisals() {
		switch a.Verdict {
		case attest.VerdictTrusted:
			trusted++
		case attest.VerdictUntrusted:
			untrusted++
		case attest.VerdictTimeout:
			timeout++
		}
	}
	fmt.Printf("\nfleet sweep complete in %v (virtual): %d trusted, %d untrusted, %d timeout\n",
		engine.Now().Sub(start), trusted, untrusted, timeout)
	return nil
}
