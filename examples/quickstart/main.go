// Quickstart: build a cyber-resilient device, boot it, hit it with an
// attack, and watch the detect -> respond -> degrade -> recover cycle.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"cres"
	"cres/internal/attack"
	"cres/internal/hw"
	"cres/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Assemble a device with the CRES architecture (the default):
	// isolated security manager core, runtime resource monitors, active
	// response manager.
	dev, err := cres.NewDevice("quickstart-device", cres.WithSeed(42))
	if err != nil {
		return err
	}

	// 2. Secure, measured boot. The firmware's signature is verified
	// against the vendor key burned into ROM; every stage is measured
	// into the TPM.
	rep, err := dev.Boot()
	if err != nil {
		return err
	}
	fmt.Printf("booted %s v%d from slot %s (healthy=%v)\n",
		rep.Image.Name, rep.Image.Version, rep.BootedSlot, rep.Healthy)

	// 3. Run a healthy workload for a while: a sense->decide->act loop.
	// The monitors learn its baseline.
	blocks := []hw.BlockID{1, 2, 3, 4}
	i := 0
	workload, err := sim.NewTicker(dev.Engine, 100*time.Microsecond, func(sim.VirtualTime) {
		if dev.SoC.AppCore.Halted() {
			return
		}
		dev.SoC.AppCore.ExecBlock(blocks[i%len(blocks)])
		dev.SoC.AppCore.Read(hw.AddrSRAM+hw.Addr((i*64)%8192), 16)
		i++
	})
	if err != nil {
		return err
	}
	defer workload.Stop()
	dev.RunFor(20 * time.Millisecond)
	fmt.Printf("after 20ms healthy run: state=%s, alerts=%d\n",
		dev.SSM.State(), dev.SSM.AlertsHandled())

	// 4. An exploited vulnerability injects code into the application.
	attackStart := dev.Now()
	if err := cres.Launch(dev, attack.CodeInjection{}); err != nil {
		return err
	}
	dev.RunFor(10 * time.Millisecond)

	// 5. The CFI monitor detected it; the SSM contained it.
	det, _ := dev.SSM.FirstDetection("cfi.unknown-block")
	fmt.Printf("\ninjection detected %v after launch\n", det.At.Sub(attackStart))
	fmt.Printf("state=%s, app core halted=%v, isolated=%v\n",
		dev.SSM.State(), dev.SoC.AppCore.Halted(), dev.Responder.Isolated())
	crit, up, total := dev.Degrader.UpCount()
	fmt.Printf("services: %d/%d up, critical up: %d (graceful degradation)\n", up, total, crit)

	// 6. Operator verifies and recovers the core; everything returns.
	if err := dev.Recover("app-core", "image verified clean, core restarted"); err != nil {
		return err
	}
	dev.RunFor(5 * time.Millisecond)
	fmt.Printf("\nafter recovery: state=%s, services up=%v\n", dev.SSM.State(), dev.Degrader.Snapshot())

	// 7. The whole episode is reconstructable from tamper-evident
	// evidence.
	forensics := dev.ForensicReport(attackStart, dev.Now())
	fmt.Println()
	fmt.Println(forensics.Render())
	return nil
}
