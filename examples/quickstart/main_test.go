package main

// Example replays the example's run() and pins its COMPLETE output.
// This is the anti-rot gate for runnable documentation: if an API or
// behaviour change shifts what this program prints, 'go test
// ./examples/...' fails with a readable diff instead of the README
// silently lying. The output is all virtual-time quantities, so it is
// stable across hosts, Go releases and -parallel settings.
func Example() {
	if err := run(); err != nil {
		panic(err)
	}
	// Output:
	// booted firmware v1 from slot A (healthy=true)
	// after 20ms healthy run: state=healthy, alerts=0
	//
	// injection detected 20µs after launch
	// state=degraded, app core halted=true, isolated=[app-core]
	// services: 2/4 up, critical up: 1 (graceful degradation)
	//
	// after recovery: state=healthy, services up=map[local-hmi:true protection-relay:true remote-management:true telemetry:true]
	//
	// breach reconstruction 20ms .. 35ms
	//   chain intact: true
	//   anchors valid: 3/3
	//   records: 64 observations, 1 alerts, 5 responses, 2 recoveries
	//   monitoring continuity: 100.0%
	//        20.02ms  cfi-monitor  alert       [critical] cfi.unknown-block app-core: core app-core executed unknown block 912080 (injected code)
	//        20.02ms  ssm          lifecycle   health state healthy -> compromised
	//        20.02ms  response-manager response    halt-core app-core: control-flow integrity violation
	//        20.02ms  response-manager response    isolate app-core: control-flow hijack: core app-core executed unknown block 912080 (injected code)
	//        20.02ms  ssm          response    play contain-on-cfi: isolated app-core; services shed: [local-hmi telemetry]; critical up: true
	//        20.02ms  ssm          lifecycle   health state compromised -> degraded
	//           30ms  ssm          recovery    recovering app-core: image verified clean, core restarted
	//           30ms  ssm          lifecycle   health state degraded -> recovering
	//           30ms  response-manager response    restore app-core: image verified clean, core restarted
	//           30ms  response-manager response    resume-core app-core: image verified clean, core restarted
	//           30ms  ssm          recovery    recovered: app-core restored; services back: [local-hmi telemetry]
	//           30ms  ssm          lifecycle   health state recovering -> healthy
	//
}
