// Threatmodel: the IDENTIFY core security function end to end. Model the
// device's assets, enumerate STRIDE threats over their interfaces, score
// them DREAD-style into a risk matrix, and compile the result into the
// concrete controls — policy rules, watchpoints, monitor configuration —
// that the CRES architecture enforces at runtime.
//
//	go run ./examples/threatmodel
package main

import (
	"fmt"
	"log"
	"sort"

	"cres/internal/hw"
	"cres/internal/threatmodel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	m := threatmodel.NewModel()

	// 1. Asset management: decompose the substation controller.
	assets := []threatmodel.Asset{
		{
			Name:        "firmware",
			Description: "bootable application image in A/B flash slots",
			Interfaces:  []threatmodel.Interface{threatmodel.IfaceFirmware, threatmodel.IfaceBus},
			Criticality: 5,
		},
		{
			Name:        "m2m-link",
			Description: "operator uplink carrying telemetry and commands",
			Interfaces:  []threatmodel.Interface{threatmodel.IfaceNetwork},
			Criticality: 4,
		},
		{
			Name:        "tee-keystore",
			Description: "session keys held in secure-world SRAM",
			Interfaces:  []threatmodel.Interface{threatmodel.IfaceCache, threatmodel.IfacePhysical},
			Criticality: 5,
		},
		{
			Name:        "breaker-actuator",
			Description: "physical breaker drive",
			Interfaces:  []threatmodel.Interface{threatmodel.IfaceActuator},
			Criticality: 5,
		},
	}
	for _, a := range assets {
		if err := m.AddAsset(a); err != nil {
			return err
		}
	}

	// 2. Threat enumeration per interface (STRIDE).
	for _, a := range assets {
		threats, err := m.EnumerateSTRIDE(a.Name)
		if err != nil {
			return err
		}
		fmt.Printf("%-17s %d threats enumerated\n", a.Name, len(threats))
	}

	// 3. Risk matrix (criticality-weighted DREAD).
	fmt.Println("\nrisk matrix (highest first):")
	for _, e := range m.RiskMatrix() {
		fmt.Printf("  %-4s %-9s %-22s %-10s %s\n",
			e.Threat.ID, e.Level, e.Threat.Category, e.Threat.Asset,
			e.Threat.Description)
	}

	// 4. Compile to enforceable controls.
	controls, err := threatmodel.Compile(m, threatmodel.DeviceMap{
		FirmwareRegions:   []string{hw.RegionSlotA, hw.RegionSlotB},
		UpdaterInitiators: []string{"updater"},
		SecureRegions:     []string{hw.RegionSecureSRAM},
		DMAInitiators:     []string{"dma0"},
		ProvisionedWorlds: map[string]hw.World{
			"app-core": hw.WorldNormal,
			"dma0":     hw.WorldNormal,
		},
	})
	if err != nil {
		return err
	}

	fmt.Println("\ncompiled controls:")
	for _, r := range controls.PolicyRules {
		fmt.Printf("  policy rule   %-28s %s %s on %s\n", r.Name, r.Effect, r.Actions, r.Object)
	}
	for _, wp := range controls.Watchpoints {
		fmt.Printf("  watchpoint    %-28s writers allowed: %v\n", wp.Region, wp.Allowed)
	}
	fmt.Printf("  bus world cross-check for %d initiators\n", len(controls.BusWorlds))
	fmt.Printf("  rate detection: %v, timing monitor: %v, env monitor: %v, cfi: %v\n",
		controls.EnableRateDetection, controls.EnableTimingMonitor,
		controls.EnableEnvMonitor, controls.EnableCFI)

	// 5. Traceability: every control cites the threats it addresses.
	// Sorted: rationale is a map, and example output is pinned by test.
	fmt.Println("\nrationale (control -> threat IDs):")
	names := make([]string, 0, len(controls.Rationale))
	for control := range controls.Rationale {
		names = append(names, control)
	}
	sort.Strings(names)
	for _, control := range names {
		fmt.Printf("  %-34s %v\n", control, controls.Rationale[control])
	}
	return nil
}
