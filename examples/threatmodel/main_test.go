package main

// Example replays the example's run() and pins its COMPLETE output.
// This is the anti-rot gate for runnable documentation: if an API or
// behaviour change shifts what this program prints, 'go test
// ./examples/...' fails with a readable diff instead of the README
// silently lying. The output is all virtual-time quantities, so it is
// stable across hosts, Go releases and -parallel settings.
func Example() {
	if err := run(); err != nil {
		panic(err)
	}
	// Output:
	// firmware          5 threats enumerated
	// m2m-link          4 threats enumerated
	// tee-keystore      3 threats enumerated
	// breaker-actuator  2 threats enumerated
	//
	// risk matrix (highest first):
	//   T01  high      tampering              firmware   [firmware] unsigned or downgraded firmware installed in flash slot
	//   T02  high      elevation-of-privilege firmware   [firmware] persistent early code execution via bootchain flaw
	//   T03  high      elevation-of-privilege firmware   [bus] bus security attribute manipulation grants normal world secure access
	//   T04  high      tampering              firmware   [bus] rogue bus master overwrites memory of other components
	//   T05  high      denial-of-service      firmware   [bus] bus flooding starves legitimate initiators
	//   T06  high      spoofing               m2m-link   [network] man-in-the-middle injects forged M2M commands
	//   T07  high      tampering              m2m-link   [network] in-flight message modification alters telemetry or commands
	//   T09  high      denial-of-service      m2m-link   [network] message flood exhausts device network stack
	//   T10  high      information-disclosure tee-keystore [shared-cache] cross-world cache covert channel exfiltrates secrets
	//   T11  high      tampering              tee-keystore [physical] voltage/clock glitching corrupts execution
	//   T12  high      information-disclosure tee-keystore [physical] physical side channels leak key material
	//   T13  high      tampering              breaker-actuator [actuator] spoofed or hijacked commands drive actuator to unsafe state
	//   T14  high      denial-of-service      breaker-actuator [actuator] actuator lockout prevents protective action
	//   T08  medium    repudiation            m2m-link   [network] device denies having sent actuation commands
	//
	// compiled controls:
	//   policy rule   deny-dma0-to-secure-sram     deny read|write|exec on secure-sram
	//   watchpoint    flash-slot-a                 writers allowed: [updater]
	//   watchpoint    flash-slot-b                 writers allowed: [updater]
	//   bus world cross-check for 2 initiators
	//   rate detection: true, timing monitor: true, env monitor: true, cfi: true
	//
	// rationale (control -> threat IDs):
	//   cfi-monitor                        [T02 T03]
	//   env-monitor                        [T01 T04 T07 T11 T13]
	//   m2m-auth+evidence                  [T06 T08]
	//   policy:dma0|secure-sram            [T02 T03]
	//   rate-detection                     [T05 T09 T14]
	//   timing-monitor                     [T10 T12]
	//   watchpoint:flash-slot-a            [T01 T04 T07 T11 T13]
	//   watchpoint:flash-slot-b            [T01 T04 T07 T11 T13]
}
