package main

// Example replays the example's run() and pins its COMPLETE output.
// This is the anti-rot gate for runnable documentation: if an API or
// behaviour change shifts what this program prints, 'go test
// ./examples/...' fails with a readable diff instead of the README
// silently lying. The output is all virtual-time quantities, so it is
// stable across hosts, Go releases and -parallel settings.
func Example() {
	if err := run(); err != nil {
		panic(err)
	}
	// Output:
	// === CRES architecture ===
	// breach reconstruction 10ms .. 30ms
	//   chain intact: true
	//   anchors valid: 3/3
	//   records: 105 observations, 1 alerts, 2 responses, 0 recoveries
	//   monitoring continuity: 100.0%
	//         10.1ms  bus-monitor  alert       [critical] bus.watchpoint app-core: unexpected write of flash-slot-a by app-core at 0x100000
	//         10.1ms  ssm          lifecycle   health state healthy -> compromised
	//         10.1ms  response-manager response    isolate app-core: watched-region tamper: unexpected write of flash-slot-a by app-core at 0x100000
	//         10.1ms  ssm          response    play isolate-on-watchpoint: isolated app-core; services shed: [local-hmi telemetry]; critical up: true
	//         10.1ms  ssm          lifecycle   health state compromised -> degraded
	//
	// verdict: chain intact=true, 3/3 anchors valid, continuity 100.0%
	// the wipe attempt is itself in the timeline above (bus.security-fault alerts)
	//
	// === baseline architecture ===
	// plain log before wipe: 1 records
	// plain log after wipe:  0 records
	// verdict: no evidence of the breach, no evidence of the wipe —
	// exactly the gap Table I's RESPOND/RECOVER rows identify.
}
