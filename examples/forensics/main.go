// Forensics: the paper's central claim made concrete. An attacker
// compromises the device, tampers with the firmware slot, and then tries
// to destroy the logs. On the CRES architecture the evidence store lives
// in the isolated world: the wipe attempt itself faults, becomes
// evidence, and the full breach timeline — with verified hash chain and
// signed anchors — is reconstructable. On the baseline, the plain log is
// silently erased and the investigation has nothing.
//
//	go run ./examples/forensics
package main

import (
	"fmt"
	"log"
	"time"

	"cres"
	"cres/internal/attack"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== CRES architecture ===")
	if err := runCRES(); err != nil {
		return err
	}
	fmt.Println("\n=== baseline architecture ===")
	return runBaseline()
}

func runCRES() error {
	tb, err := cres.NewAttackTestbed(cres.ArchCRES, 7)
	if err != nil {
		return err
	}
	dev := tb.Device()
	if err := tb.Warm(10 * time.Millisecond); err != nil {
		return err
	}

	attackStart := dev.Now()
	if err := (attack.FirmwareTamper{}).Launch(tb.AttackTarget()); err != nil {
		return err
	}
	dev.RunFor(10 * time.Millisecond)
	// The attacker's cleanup attempt.
	if err := (attack.LogWipe{}).Launch(tb.AttackTarget()); err != nil {
		return err
	}
	dev.RunFor(10 * time.Millisecond)

	rep := dev.ForensicReport(attackStart, dev.Now())
	fmt.Println(rep.Render())
	fmt.Printf("verdict: chain intact=%v, %d/%d anchors valid, continuity %.1f%%\n",
		rep.ChainIntact, rep.AnchorsValid, rep.AnchorsTotal, rep.Continuity*100)
	fmt.Println("the wipe attempt is itself in the timeline above (bus.security-fault alerts)")
	return nil
}

func runBaseline() error {
	tb, err := cres.NewAttackTestbed(cres.ArchBaseline, 7)
	if err != nil {
		return err
	}
	dev := tb.Device()
	if err := tb.Warm(10 * time.Millisecond); err != nil {
		return err
	}

	if err := (attack.FirmwareTamper{}).Launch(tb.AttackTarget()); err != nil {
		return err
	}
	dev.RunFor(10 * time.Millisecond)
	fmt.Printf("plain log before wipe: %d records\n", dev.PlainLog.Len())

	// The attacker erases the log. No hash chain, no isolated store, no
	// anchors: the erasure is silent.
	dev.PlainLog.Erase(0)
	dev.RunFor(10 * time.Millisecond)

	fmt.Printf("plain log after wipe:  %d records\n", dev.PlainLog.Len())
	fmt.Println("verdict: no evidence of the breach, no evidence of the wipe —")
	fmt.Println("exactly the gap Table I's RESPOND/RECOVER rows identify.")
	return nil
}
