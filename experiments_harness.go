package cres

import "cres/internal/harness"

// This file is the experiments' bridge to the sharded parallel runner:
// every RunE* function accepts RunOptions selecting how wide its
// independent simulation runs fan out. The default is serial and the
// pre-existing call signatures still compile, but note that moving the
// experiments onto the harness changed their numbers once: each
// internal run is now seeded with ShardSeed(seed, shardIndex) instead
// of the raw seed, so tables recorded before the harness landed do not
// match post-harness output at the same -seed. What IS invariant is
// parallelism: results merge in shard order, so a run's output is
// byte-identical at any worker count.

// RunOption configures an experiment run.
type RunOption func(*runCfg)

type runCfg struct {
	pool *harness.Pool
}

// WithParallel fans the experiment's independent simulation runs across
// up to workers goroutines (workers <= 0 selects GOMAXPROCS). Output is
// unchanged by the setting — only wall-clock time.
func WithParallel(workers int) RunOption {
	return func(c *runCfg) { c.pool = harness.NewPool(workers) }
}

// WithRunPool shares an existing worker pool across experiment runs.
func WithRunPool(p *harness.Pool) RunOption {
	return func(c *runCfg) { c.pool = p }
}

func newRunCfg(opts []RunOption) runCfg {
	c := runCfg{pool: harness.Serial()}
	for _, o := range opts {
		o(&c)
	}
	return c
}
