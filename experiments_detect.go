package cres

import (
	"fmt"
	"time"

	"cres/internal/attack"
	"cres/internal/boot"
	"cres/internal/cryptoutil"
	"cres/internal/harness"
	"cres/internal/hw"
	"cres/internal/m2m"
	"cres/internal/report"
	"cres/internal/scenario"
	"cres/internal/sim"
)

// This file implements experiments E3 (detection matrix), E4 (evidence
// continuity) and E5 (graceful degradation) — the quantitative tests of
// the paper's Section V claims against the passive baseline. Each
// independent device run is one harness shard with its own engine and
// derived seed, so the experiments parallelise without changing output.

// testbed builds a device plus the ancillary pieces the attack suite
// needs (network peer, TEE trustlet and secret), on its own engine.
type testbed struct {
	dev  *Device
	tgt  *attack.Target
	peer *m2m.Endpoint
}

// newTestbedFromSpec assembles the device a compiled-scenario cell
// describes, on its own engine seeded from the spec, with the M2M
// network the attack suite needs attached.
func newTestbedFromSpec(spec scenario.DeviceSpec) (*testbed, error) {
	engine := sim.New(spec.Seed)
	net := m2m.NewNetwork(engine, m2m.Config{})
	dev, err := NewDeviceFromSpec(spec, WithEngine(engine), WithNetwork(net))
	if err != nil {
		return nil, err
	}
	return finishTestbed(dev, net)
}

// newTestbed assembles a device of the given architecture ready for the
// full attack suite.
func newTestbed(arch Architecture, seed int64) (*testbed, error) {
	return newTestbedFromSpec(scenario.DeviceSpec{Name: "dut", Arch: arch.String(), Seed: seed})
}

// finishTestbed completes a testbed around an already-constructed
// device: operator peer, TEE secret and trustlet, boot.
func finishTestbed(dev *Device, net *m2m.Network) (*testbed, error) {
	// Operator peer for M2M traffic.
	opKey, err := cryptoutil.KeyPairFromSeed(cryptoutil.DeriveKey([]byte("operator"), "op", "", 32))
	if err != nil {
		return nil, err
	}
	peer, err := net.AddNode("operator", opKey)
	if err != nil {
		return nil, err
	}
	peer.Trust("dut", dev.Endpoint.PublicKey())
	dev.Endpoint.Trust("operator", peer.PublicKey())

	// TEE secret and victim trustlet for the exfiltration scenarios.
	if err := dev.TEE.StoreSecret("m2m-key", []byte("fleet session key")); err != nil {
		return nil, err
	}
	if err := dev.TEE.LoadTrustlet(boot.BuildSigned("keymaster", 1, []byte("ta"), dev.Vendor), dev.Vendor.Public()); err != nil {
		return nil, err
	}

	if _, err := dev.Boot(); err != nil {
		return nil, err
	}
	tgt := dev.Target()
	tgt.Peer = peer
	return &testbed{dev: dev, tgt: tgt, peer: peer}, nil
}

// warm runs healthy workload so anomaly baselines exist.
func (tb *testbed) warm(dur time.Duration) error {
	i := 0
	var buf [16]byte
	tk, err := sim.NewTicker(tb.dev.Engine, 100*time.Microsecond, func(sim.VirtualTime) {
		if tb.dev.SoC.AppCore.Halted() {
			return
		}
		seq := []hw.BlockID{1, 2, 3, 4}
		tb.dev.SoC.AppCore.ExecBlock(seq[i%4])
		tb.dev.SoC.AppCore.ReadInto(hw.AddrSRAM+hw.Addr((i*64)%8192), buf[:])
		if i%5 == 0 {
			tb.peer.Send("dut", "telemetry", []byte("nominal"))
		}
		i++
	})
	if err != nil {
		return err
	}
	tb.dev.RunFor(dur)
	tk.Stop()
	return nil
}

// E3Row is one scenario's outcome in the detection matrix.
type E3Row struct {
	Scenario         string
	ExpectedSig      string
	CRESDetected     bool
	DetectionLatency time.Duration
	CRESResponded    bool
	BaselineDetected bool
}

// E3Result is the detection matrix.
type E3Result struct {
	Rows  []E3Row
	Table *report.Table
	// CRESRate and BaselineRate are detection rates over the suite.
	CRESRate, BaselineRate float64
}

// RunE3DetectionMatrix runs every registered attack scenario against a
// fresh device per compiled device spec — the reference CRES shape and
// the passive baseline — and reports who detected what. Each
// (scenario, device) cell is an independent shard.
func RunE3DetectionMatrix(seed int64, opts ...RunOption) (*E3Result, error) {
	rc := newRunCfg(opts)
	suite := attack.All()
	devices := []scenario.DeviceSpec{
		{Name: "dut", Arch: scenario.ArchCRES},
		{Name: "dut", Arch: scenario.ArchBaseline},
	}

	// Even shards are CRES cells, odd shards the matching baseline cell.
	type e3cell struct {
		row              E3Row
		baselineDetected bool
	}
	cells, err := harness.Map(rc.pool, len(suite)*len(devices), seed, func(sh harness.Shard) (e3cell, error) {
		sc := suite[sh.Index/len(devices)]
		spec := devices[sh.Index%len(devices)]
		spec.Seed = sh.Seed
		if spec.Arch == scenario.ArchCRES {
			// CRES run.
			row := E3Row{Scenario: sc.Name(), ExpectedSig: sc.ExpectedSignatures()[0]}
			tb, err := newTestbedFromSpec(spec)
			if err != nil {
				return e3cell{}, fmt.Errorf("e3 %s: %w", sc.Name(), err)
			}
			if err := tb.warm(15 * time.Millisecond); err != nil {
				return e3cell{}, err
			}
			launchAt := tb.dev.Now()
			if err := sc.Launch(tb.tgt); err != nil {
				return e3cell{}, fmt.Errorf("e3 launch %s: %w", sc.Name(), err)
			}
			tb.dev.RunFor(30 * time.Millisecond)
			all := true
			var firstAt sim.VirtualTime
			for _, sig := range sc.ExpectedSignatures() {
				d, ok := tb.dev.SSM.FirstDetection(sig)
				if !ok {
					all = false
					break
				}
				if firstAt == 0 || d.At < firstAt {
					firstAt = d.At
				}
			}
			row.CRESDetected = all
			if all {
				row.DetectionLatency = firstAt.Sub(launchAt)
			}
			row.CRESResponded = tb.dev.SSM.ResponsesFired() > 0
			return e3cell{row: row}, nil
		}

		// Baseline run: no monitors exist, so detection is structurally
		// impossible; we still run the attack to confirm it proceeds
		// unobserved (no log records beyond boot).
		bb, err := newTestbedFromSpec(spec)
		if err != nil {
			return e3cell{}, err
		}
		if err := bb.warm(15 * time.Millisecond); err != nil {
			return e3cell{}, err
		}
		before := bb.dev.PlainLog.Len()
		if err := sc.Launch(bb.tgt); err != nil {
			return e3cell{}, err
		}
		bb.dev.RunFor(30 * time.Millisecond)
		return e3cell{baselineDetected: bb.dev.PlainLog.Len() > before}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &E3Result{}
	detected, bdet := 0, 0
	for i := range suite {
		row := cells[2*i].row
		row.BaselineDetected = cells[2*i+1].baselineDetected
		if row.CRESDetected {
			detected++
		}
		if row.BaselineDetected {
			bdet++
		}
		res.Rows = append(res.Rows, row)
	}
	res.CRESRate = float64(detected) / float64(len(res.Rows))
	res.BaselineRate = float64(bdet) / float64(len(res.Rows))

	t := report.NewTable("E3 — Detection matrix: attack suite vs CRES and baseline architectures",
		"Scenario", "Signature", "CRES detected", "Latency", "CRES responded", "Baseline detected")
	for _, r := range res.Rows {
		lat := "-"
		if r.CRESDetected {
			lat = r.DetectionLatency.String()
		}
		t.AddRow(r.Scenario, r.ExpectedSig, yn(r.CRESDetected), lat, yn(r.CRESResponded), yn(r.BaselineDetected))
	}
	t.AddRow("TOTAL", "", report.Pct(res.CRESRate), "", "", report.Pct(res.BaselineRate))
	res.Table = t
	return res, nil
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// E4Row is one architecture's evidence outcome.
type E4Row struct {
	Architecture     string
	RecordsInWindow  int
	Continuity       float64
	WipedAfterAttack bool
	WipeDetected     bool
}

// E4Result is the evidence-continuity comparison.
type E4Result struct {
	Rows  []E4Row
	Table *report.Table
}

// RunE4EvidenceContinuity attacks both architectures, then has the
// attacker attempt to destroy the logs, and measures what forensics can
// still establish. The two architecture runs are independent shards.
func RunE4EvidenceContinuity(seed int64, opts ...RunOption) (*E4Result, error) {
	rc := newRunCfg(opts)
	rows, err := harness.Map(rc.pool, 2, seed, func(sh harness.Shard) (E4Row, error) {
		if sh.Index == 0 {
			// CRES: the attacker's wipe attempt targets the isolated
			// evidence store and fails (it becomes evidence itself);
			// continuity holds.
			tb, err := newTestbed(ArchCRES, sh.Seed)
			if err != nil {
				return E4Row{}, err
			}
			if err := tb.warm(10 * time.Millisecond); err != nil {
				return E4Row{}, err
			}
			attackStart := tb.dev.Now()
			if err := (attack.FirmwareTamper{}).Launch(tb.tgt); err != nil {
				return E4Row{}, err
			}
			tb.dev.RunFor(10 * time.Millisecond)
			if err := (attack.LogWipe{}).Launch(tb.tgt); err != nil {
				return E4Row{}, err
			}
			tb.dev.RunFor(10 * time.Millisecond)
			rep := tb.dev.ForensicReport(attackStart, tb.dev.Now())
			return E4Row{
				Architecture:     "cres",
				RecordsInWindow:  rep.Observations + rep.Alerts + rep.Responses,
				Continuity:       rep.Continuity,
				WipedAfterAttack: false, // the isolated store cannot be reached
				WipeDetected:     true,  // the attempt raised security faults
			}, nil
		}

		// Baseline: the plain log in normal-world memory is silently
		// erasable; after the wipe, the window holds nothing and nothing
		// says so.
		bb, err := newTestbed(ArchBaseline, sh.Seed)
		if err != nil {
			return E4Row{}, err
		}
		if err := bb.warm(10 * time.Millisecond); err != nil {
			return E4Row{}, err
		}
		battackStart := bb.dev.Now()
		if err := (attack.FirmwareTamper{}).Launch(bb.tgt); err != nil {
			return E4Row{}, err
		}
		bb.dev.RunFor(10 * time.Millisecond)
		bb.dev.PlainLog.Erase(0) // attacker wipes everything, silently
		bb.dev.RunFor(10 * time.Millisecond)
		kept := len(bb.dev.PlainLog.Window(battackStart, bb.dev.Now()))
		return E4Row{
			Architecture:     "baseline",
			RecordsInWindow:  kept,
			Continuity:       0,
			WipedAfterAttack: true,
			WipeDetected:     false,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &E4Result{Rows: rows}

	t := report.NewTable("E4 — Evidence continuity after compromise and log-destruction attempt",
		"Architecture", "Records in attack window", "Continuity", "Log wiped", "Wipe detected")
	for _, r := range res.Rows {
		t.AddRow(r.Architecture, report.I(r.RecordsInWindow), report.Pct(r.Continuity),
			yn(r.WipedAfterAttack), yn(r.WipeDetected))
	}
	res.Table = t
	return res, nil
}

// E5Result is the graceful-degradation availability comparison.
type E5Result struct {
	// CriticalAvailability maps architecture to the fraction of the
	// post-attack window the critical service was up.
	CriticalAvailability map[string]float64
	// TotalAvailability maps architecture to mean fraction of all
	// services up.
	TotalAvailability map[string]float64
	Table             *report.Table
	Series            []report.Series
}

// RunE5GracefulDegradation injects a code-injection compromise and
// samples service availability over the following window. The CRES
// device isolates the compromised core and keeps the critical service on
// its fallback; the baseline device reboots (its only response),
// dropping everything. The two architecture runs are independent shards.
func RunE5GracefulDegradation(seed int64, window time.Duration, opts ...RunOption) (*E5Result, error) {
	rc := newRunCfg(opts)
	if window <= 0 {
		window = 600 * time.Millisecond
	}

	archs := []Architecture{ArchCRES, ArchBaseline}
	type e5out struct {
		critAvail, totAvail float64
		series              report.Series
	}
	outs, err := harness.Map(rc.pool, len(archs), seed, func(sh harness.Shard) (e5out, error) {
		arch := archs[sh.Index]
		tb, err := newTestbed(arch, sh.Seed)
		if err != nil {
			return e5out{}, err
		}
		if err := tb.warm(15 * time.Millisecond); err != nil {
			return e5out{}, err
		}
		if err := (attack.CodeInjection{}).Launch(tb.tgt); err != nil {
			return e5out{}, err
		}
		// The baseline's stand-in for detection is an operator noticing
		// misbehaviour after a delay and power-cycling the device.
		if arch == ArchBaseline {
			tb.dev.Engine.MustSchedule(20*time.Millisecond, func() {
				tb.dev.Baseline.Reboot("operator-initiated power cycle", nil)
			})
		}

		// Sample availability each millisecond.
		var critUp, totUp, samples int
		var totServices int
		series := report.Series{Name: "services-up-" + arch.String(), XLabel: "ms", YLabel: "services up"}
		tk, err := sim.NewTicker(tb.dev.Engine, time.Millisecond, func(at sim.VirtualTime) {
			_, up, total := tb.dev.Degrader.UpCount()
			samples++
			totServices = total
			if tb.dev.Degrader.CriticalUp() {
				critUp++
			}
			totUp += up
			series.Add(float64(at.Duration().Milliseconds()), float64(up))
		})
		if err != nil {
			return e5out{}, err
		}
		tb.dev.RunFor(window)
		tk.Stop()

		return e5out{
			critAvail: float64(critUp) / float64(samples),
			totAvail:  float64(totUp) / float64(samples*totServices),
			series:    series,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &E5Result{
		CriticalAvailability: make(map[string]float64),
		TotalAvailability:    make(map[string]float64),
	}
	for i, arch := range archs {
		res.CriticalAvailability[arch.String()] = outs[i].critAvail
		res.TotalAvailability[arch.String()] = outs[i].totAvail
		res.Series = append(res.Series, outs[i].series)
	}

	t := report.NewTable("E5 — Availability under attack: graceful degradation (CRES) vs reboot (baseline)",
		"Architecture", "Critical-service availability", "Mean service availability")
	for _, arch := range []string{"cres", "baseline"} {
		t.AddRow(arch, report.Pct(res.CriticalAvailability[arch]), report.Pct(res.TotalAvailability[arch]))
	}
	res.Table = t
	return res, nil
}
