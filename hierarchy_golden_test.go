package cres

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cres/internal/fleet"
)

// TestHierarchyGolden pins the E15 hierarchical re-attestation table
// two ways: byte-identical between -parallel 1 and 8 (node keys,
// coefficients and tier aggregation all derive from (seed, node
// index), so pool width can only reorder work, never bytes), and
// byte-identical to the committed golden, so any change to the signing
// chain, the merge algebra, the excision rules or the virtual-time
// model shows up as a readable diff. Regenerate with:
//
//	go test -run TestHierarchyGolden -update-golden .
//
// Every cell is a virtual-time or counting quantity — no host
// clocks — so the table is stable across hosts and Go releases.
func TestHierarchyGolden(t *testing.T) {
	serial, err := RunE15Hierarchy(E15Config{RootSeed: 7}, WithParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunE15Hierarchy(E15Config{RootSeed: 7}, WithParallel(8))
	if err != nil {
		t.Fatal(err)
	}
	got := serial.Table.Render()
	if p := parallel.Table.Render(); got != p {
		t.Fatalf("hierarchy table depends on parallelism:\n--- p1 ---\n%s\n--- p8 ---\n%s", got, p)
	}

	golden := filepath.Join("testdata", "hierarchy_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("hierarchy table drifted from %s (re-run with -update-golden if intended):\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestE15LyingVerifierDetected is the acceptance test for the
// hierarchy's guarantee: for every default depth × fan-out shape, a
// verifier forging its merged summary at ANY interior tier — root
// included — is detected, attributed to the right node, and excised so
// the final fleet summary still equals the honest one.
func TestE15LyingVerifierDetected(t *testing.T) {
	for _, shape := range E15Shapes(false) {
		ct, err := E15TreeSpec(shape).Compile()
		if err != nil {
			t.Fatal(err)
		}
		tr, err := ct.Tree(7)
		if err != nil {
			t.Fatal(err)
		}
		honest, err := tr.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		for tier := 1; tier <= tr.Depth(); tier++ {
			// Both ends of the tier: index 0 and the last node, so ragged
			// and boundary positions are covered.
			for _, index := range []int{0, tr.Tiers()[tier] - 1} {
				liar := fleet.NodeID{Tier: tier, Index: index}
				res, err := tr.RunForged(nil, fleet.Forge{Node: liar, Mode: fleet.ForgeSummary})
				if err != nil {
					t.Fatalf("%dx%d liar %s: %v", shape.Depth, shape.Fanout, liar, err)
				}
				if len(res.Detections) != 1 {
					t.Fatalf("%dx%d liar %s: %d detections, want 1: %+v",
						shape.Depth, shape.Fanout, liar, len(res.Detections), res.Detections)
				}
				det := res.Detections[0]
				if det.Liar != liar {
					t.Errorf("%dx%d liar %s: attributed to %s", shape.Depth, shape.Fanout, liar, det.Liar)
				}
				if det.Kind != "forged-merge" {
					t.Errorf("%dx%d liar %s: kind %q, want forged-merge", shape.Depth, shape.Fanout, liar, det.Kind)
				}
				if wantTier := tier + 1; det.By.Tier != wantTier {
					t.Errorf("%dx%d liar %s: detected at tier %d, want direct parent tier %d",
						shape.Depth, shape.Fanout, liar, det.By.Tier, wantTier)
				}
				if !bytes.Equal(res.Summary.AppendCanonical(nil), honest.Summary.AppendCanonical(nil)) {
					t.Errorf("%dx%d liar %s: excised summary differs from honest summary", shape.Depth, shape.Fanout, liar)
				}
			}
		}
	}
}
