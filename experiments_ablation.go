package cres

import (
	"time"

	"cres/internal/attack"
	"cres/internal/harness"
	"cres/internal/report"
	"cres/internal/scenario"
)

// This file implements the E3b ablation called out in DESIGN.md:
// signature-only vs anomaly-only vs combined detection, quantifying why
// Table I's DETECT function lists both method families and the paper's
// architecture runs them together.

// E3bRow records one scenario's detection under each mode.
type E3bRow struct {
	Scenario  string
	Signature bool
	Anomaly   bool
	Combined  bool
}

// E3bResult is the detection-mode ablation.
type E3bResult struct {
	Rows  []E3bRow
	Table *report.Table
	// Rates maps mode name to detection rate over the suite.
	Rates map[string]float64
}

// newTestbedWithMode builds a CRES testbed with the given detection
// mode — a shorthand over the spec path for tests.
func newTestbedWithMode(seed int64, mode DetectionMode) (*testbed, error) {
	return newTestbedFromSpec(scenario.DeviceSpec{Name: "dut", Detection: mode.String(), Seed: seed})
}

// RunE3bDetectionAblation runs the registered attack suite against one
// compiled device spec per detection mode. Each (mode, scenario) cell
// is an independent shard.
func RunE3bDetectionAblation(seed int64, opts ...RunOption) (*E3bResult, error) {
	rc := newRunCfg(opts)
	devices := []scenario.DeviceSpec{
		{Name: "dut", Detection: scenario.DetectSignatureOnly},
		{Name: "dut", Detection: scenario.DetectAnomalyOnly},
		{Name: "dut", Detection: scenario.DetectCombined},
	}
	suite := attack.All()

	hits, err := harness.Map(rc.pool, len(devices)*len(suite), seed, func(sh harness.Shard) (bool, error) {
		spec := devices[sh.Index/len(suite)]
		sc := suite[sh.Index%len(suite)]
		spec.Seed = sh.Seed
		tb, err := newTestbedFromSpec(spec)
		if err != nil {
			return false, err
		}
		if err := tb.warm(15 * time.Millisecond); err != nil {
			return false, err
		}
		if err := sc.Launch(tb.tgt); err != nil {
			return false, err
		}
		tb.dev.RunFor(30 * time.Millisecond)
		// Under ablation, ANY alert attributable to the attack counts as
		// detection — the expected signature may be disabled while
		// another family still catches the activity.
		return tb.dev.SSM.AlertsHandled() > 0, nil
	})
	if err != nil {
		return nil, err
	}
	detected := func(mode, scenario int) bool { return hits[mode*len(suite)+scenario] }

	res := &E3bResult{Rates: make(map[string]float64)}
	counts := make([]int, len(devices))
	for i, sc := range suite {
		row := E3bRow{
			Scenario:  sc.Name(),
			Signature: detected(0, i),
			Anomaly:   detected(1, i),
			Combined:  detected(2, i),
		}
		res.Rows = append(res.Rows, row)
		for m := range devices {
			if detected(m, i) {
				counts[m]++
			}
		}
	}
	n := float64(len(suite))
	for m, spec := range devices {
		res.Rates[spec.Detection] = float64(counts[m]) / n
	}

	t := report.NewTable("E3b — Detection-mode ablation (any attack-window alert counts)",
		"Scenario", "Signature-only", "Anomaly-only", "Combined")
	for _, r := range res.Rows {
		t.AddRow(r.Scenario, yn(r.Signature), yn(r.Anomaly), yn(r.Combined))
	}
	t.AddRow("RATE",
		report.Pct(res.Rates["signature-only"]),
		report.Pct(res.Rates["anomaly-only"]),
		report.Pct(res.Rates["combined"]))
	res.Table = t
	return res, nil
}
