package cres

import (
	"time"

	"cres/internal/attack"
	"cres/internal/harness"
	"cres/internal/m2m"
	"cres/internal/report"
	"cres/internal/sim"
)

// This file implements the E3b ablation called out in DESIGN.md:
// signature-only vs anomaly-only vs combined detection, quantifying why
// Table I's DETECT function lists both method families and the paper's
// architecture runs them together.

// E3bRow records one scenario's detection under each mode.
type E3bRow struct {
	Scenario  string
	Signature bool
	Anomaly   bool
	Combined  bool
}

// E3bResult is the detection-mode ablation.
type E3bResult struct {
	Rows  []E3bRow
	Table *report.Table
	// Rates maps mode name to detection rate over the suite.
	Rates map[string]float64
}

// newTestbedWithMode builds a CRES testbed with the given detection
// mode.
func newTestbedWithMode(seed int64, mode DetectionMode) (*testbed, error) {
	engine := sim.New(seed)
	net := m2m.NewNetwork(engine, m2m.Config{})
	dev, err := NewDevice("dut", WithEngine(engine), WithNetwork(net), WithDetectionMode(mode))
	if err != nil {
		return nil, err
	}
	return finishTestbed(dev, net)
}

// RunE3bDetectionAblation runs the attack suite under the three
// detection modes. Each (mode, scenario) cell is an independent shard.
func RunE3bDetectionAblation(seed int64, opts ...RunOption) (*E3bResult, error) {
	rc := newRunCfg(opts)
	modes := []DetectionMode{DetectSignatureOnly, DetectAnomalyOnly, DetectCombined}
	suite := attack.Suite()

	hits, err := harness.Map(rc.pool, len(modes)*len(suite), seed, func(sh harness.Shard) (bool, error) {
		mode := modes[sh.Index/len(suite)]
		sc := suite[sh.Index%len(suite)]
		tb, err := newTestbedWithMode(sh.Seed, mode)
		if err != nil {
			return false, err
		}
		if err := tb.warm(15 * time.Millisecond); err != nil {
			return false, err
		}
		if err := sc.Launch(tb.tgt); err != nil {
			return false, err
		}
		tb.dev.RunFor(30 * time.Millisecond)
		// Under ablation, ANY alert attributable to the attack counts as
		// detection — the expected signature may be disabled while
		// another family still catches the activity.
		return tb.dev.SSM.AlertsHandled() > 0, nil
	})
	if err != nil {
		return nil, err
	}
	detected := func(mode, scenario int) bool { return hits[mode*len(suite)+scenario] }

	res := &E3bResult{Rates: make(map[string]float64)}
	counts := make(map[DetectionMode]int)
	for i, sc := range suite {
		row := E3bRow{
			Scenario:  sc.Name(),
			Signature: detected(0, i),
			Anomaly:   detected(1, i),
			Combined:  detected(2, i),
		}
		res.Rows = append(res.Rows, row)
		for m := range modes {
			if detected(m, i) {
				counts[modes[m]]++
			}
		}
	}
	n := float64(len(suite))
	res.Rates["signature-only"] = float64(counts[DetectSignatureOnly]) / n
	res.Rates["anomaly-only"] = float64(counts[DetectAnomalyOnly]) / n
	res.Rates["combined"] = float64(counts[DetectCombined]) / n

	t := report.NewTable("E3b — Detection-mode ablation (any attack-window alert counts)",
		"Scenario", "Signature-only", "Anomaly-only", "Combined")
	for _, r := range res.Rows {
		t.AddRow(r.Scenario, yn(r.Signature), yn(r.Anomaly), yn(r.Combined))
	}
	t.AddRow("RATE",
		report.Pct(res.Rates["signature-only"]),
		report.Pct(res.Rates["anomaly-only"]),
		report.Pct(res.Rates["combined"]))
	res.Table = t
	return res, nil
}
