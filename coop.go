package cres

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"cres/internal/core"
	"cres/internal/m2m"
	"cres/internal/monitor"
	"cres/internal/sim"
)

// This file wires the cooperative-response layer of a networked fleet:
// devices gossip signed alert digests over the authenticated M2M
// fabric, ingest neighbour digests as evidence (the SSM raises its
// posture pre-emptively), and cut the link towards a neighbour whose
// digest says it is compromised — closing the door before a worm's
// dwell expires. Experiment E13 measures exactly this race.

// GossipKind is the M2M message kind carrying alert digests. Digests
// ride ordinary endpoint messages, so they inherit the fabric's
// signing, replay protection and monitoring for free — that is what
// makes them "signed alert digests".
const GossipKind = "cres.gossip"

// encodeDigest serialises a digest for the wire.
func encodeDigest(d core.PeerDigest) []byte {
	return []byte(fmt.Sprintf("%s|%s|%d|%d", d.Origin, d.Signature, uint8(d.Severity), int64(d.At)))
}

// decodeDigest parses a wire digest.
func decodeDigest(b []byte) (core.PeerDigest, error) {
	parts := strings.Split(string(b), "|")
	if len(parts) != 4 {
		return core.PeerDigest{}, fmt.Errorf("cres: malformed gossip digest %q", b)
	}
	sev, err := strconv.ParseUint(parts[2], 10, 8)
	if err != nil {
		return core.PeerDigest{}, fmt.Errorf("cres: gossip digest severity: %w", err)
	}
	at, err := strconv.ParseInt(parts[3], 10, 64)
	if err != nil {
		return core.PeerDigest{}, fmt.Errorf("cres: gossip digest time: %w", err)
	}
	return core.PeerDigest{
		Origin:    parts[0],
		Signature: parts[1],
		Severity:  monitor.Severity(sev),
		At:        sim.VirtualTime(at),
	}, nil
}

// EnableCooperation joins the device to its fleet's cooperative
// defence, gossiping with the named M2M peers (its topology
// neighbours). Three behaviours switch on:
//
//   - every first detection at Warning or above is published as an
//     alert digest to every gossip peer;
//   - incoming digests are ingested as neighbour evidence (posture
//     raise, see core.SSM.IngestPeerDigest) and forwarded once to the
//     other peers, so evidence floods the fleet epidemically even off
//     the origin's immediate neighbourhood;
//   - a Critical digest from a *direct* gossip peer quarantines the
//     link towards it through the response manager — the pre-emptive
//     cut that stops a worm mid-hop.
//
// Requires the CRES architecture and an attached network endpoint.
// Peers must be trusted (Endpoint.Trust) separately, as usual.
func (d *Device) EnableCooperation(peers ...string) error {
	if d.SSM == nil {
		return fmt.Errorf("cres: %s: cooperation needs the CRES architecture", d.Name)
	}
	if d.Endpoint == nil || d.Network == nil {
		return fmt.Errorf("cres: %s: cooperation needs an attached M2M network", d.Name)
	}
	d.gossipPeers = append([]string(nil), peers...)
	sort.Strings(d.gossipPeers)
	direct := make(map[string]bool, len(peers))
	for _, p := range peers {
		direct[p] = true
	}
	// seen tracks the highest severity handled per (origin, signature),
	// so repeats are dropped but ESCALATED digests (same signature, now
	// Critical on the origin) still flow — they are what arms the
	// quarantine for signatures that start at Warning.
	seen := make(map[string]monitor.Severity)

	send := func(to string, d2 core.PeerDigest, from string) {
		if to == from || to == d2.Origin {
			return
		}
		payload := encodeDigest(d2)
		d.Endpoint.Send(to, GossipKind, payload) //nolint:errcheck // best effort, like any gossip
		// Redundant re-sends (SetGossipRedundancy) blunt fabric drops.
		// Each copy is a fresh signed message with its own nonce; the
		// receiver's severity-keyed seen map and the SSM's ingest dedup
		// absorb whichever copies arrive beyond the first, so extra
		// copies can never double-count evidence.
		for k := 1; k <= d.gossipExtra; k++ {
			k := k
			d.Engine.MustSchedule(d.gossipBackoff(k), func() {
				d.Endpoint.Send(to, GossipKind, payload) //nolint:errcheck // best effort, like any gossip
			})
		}
	}

	// Egress: own detections (first per signature, plus escalations —
	// the SSM's publish gate decides).
	d.SSM.SetDigestPublisher(func(dig core.PeerDigest) {
		seen[dig.Origin+"|"+dig.Signature] = dig.Severity
		for _, p := range d.gossipPeers {
			send(p, dig, "")
		}
	})

	// Cooperative cut: known-compromised direct neighbour.
	d.SSM.SetPeerThreatHandler(func(dig core.PeerDigest) {
		if !direct[dig.Origin] {
			return
		}
		d.Responder.QuarantineLink(d.Network, d.Name, dig.Origin, //nolint:errcheck // recorded via action log
			fmt.Sprintf("neighbour evidence: %s", dig))
	})

	// Ingress: ingest once per severity level, forward once.
	d.Endpoint.Handle(GossipKind, func(msg m2m.Message) {
		dig, err := decodeDigest(msg.Payload)
		if err != nil || dig.Origin == d.Name {
			return
		}
		key := dig.Origin + "|" + dig.Signature
		if prev, dup := seen[key]; dup && dig.Severity <= prev {
			return
		}
		seen[key] = dig.Severity
		d.SSM.IngestPeerDigest(dig)
		for _, p := range d.gossipPeers {
			send(p, dig, msg.From)
		}
	})

	// Recovery hook: let ForgetPeer clear this layer's suppression
	// state alongside the SSM's, so a re-compromised neighbour's fresh
	// digests flow and quarantine re-arms.
	d.coopForget = func(origin string) {
		prefix := origin + "|"
		for key := range seen {
			if strings.HasPrefix(key, prefix) {
				delete(seen, key)
			}
		}
	}
	return nil
}

// SetGossipRedundancy makes every outgoing digest copy (own detections
// and forwards alike) be re-sent extra more times, the k-th re-send
// delayed by backoff(k). On a lossy fabric this turns one-shot gossip
// into bounded retry; receivers dedup, so redundancy never changes
// evidence counts. backoff must be deterministic for reproducible
// runs — e.g. faultmodel.Plan.Backoff — and defaults to a fixed 1ms
// when nil. extra <= 0 switches redundancy off.
func (d *Device) SetGossipRedundancy(extra int, backoff func(attempt int) time.Duration) {
	if backoff == nil {
		backoff = func(int) time.Duration { return time.Millisecond }
	}
	d.gossipExtra = extra
	d.gossipBackoff = backoff
}

// ForgetPeer erases everything this device holds against a neighbour —
// the SSM's peer threat score and suppression entries, and the
// cooperation layer's forwarding dedup — after the fleet has verified
// the neighbour clean. A later re-compromise then scores, gossips and
// quarantines from scratch. Safe to call whether or not cooperation is
// enabled.
func (d *Device) ForgetPeer(origin string) {
	if d.SSM != nil {
		d.SSM.ForgetPeer(origin)
	}
	if d.coopForget != nil {
		d.coopForget(origin)
	}
}

// GossipPeers returns the peers this device gossips with (sorted), or
// nil when cooperation is not enabled.
func (d *Device) GossipPeers() []string { return d.gossipPeers }
