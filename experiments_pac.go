package cres

import (
	"errors"

	"cres/internal/harness"
	"cres/internal/ptrauth"
	"cres/internal/report"
	"cres/internal/sim"
)

// This file implements experiment E11: the pointer-authentication
// countermeasure Section IV discusses ("a pointer authentication
// mechanism has been introduced... guarantees the integrity of pointers
// by extending each pointer with authentication code"). A ROP attacker
// overwrites stored return addresses; a plain return stack executes the
// gadget silently, while the PAC-protected stack traps on almost every
// corruption (forgery succeeds only by guessing the PAC).

// E11Row is one stack configuration's outcome.
type E11Row struct {
	Config string
	// Corruptions is the number of injected return-address overwrites.
	Corruptions int
	// Caught is how many were detected (authentication trap).
	Caught int
	// GadgetRuns is how many times the attacker's gadget address was
	// returned to (successful hijack).
	GadgetRuns int
}

// E11Result is the pointer-authentication experiment.
type E11Result struct {
	Rows  []E11Row
	Table *report.Table
}

// plainStack is the unprotected baseline: raw return addresses.
type plainStack struct {
	entries []uint64
}

func (s *plainStack) push(a uint64)           { s.entries = append(s.entries, a) }
func (s *plainStack) corrupt(i int, v uint64) { s.entries[i] = v }
func (s *plainStack) pop() uint64 {
	a := s.entries[len(s.entries)-1]
	s.entries = s.entries[:len(s.entries)-1]
	return a
}

// RunE11PointerAuth runs `trials` call/corrupt/return rounds against a
// plain return stack and a PAC-protected one. The two configurations
// run on independent shards with their own derived RNG streams.
func RunE11PointerAuth(seed int64, trials int, opts ...RunOption) (*E11Result, error) {
	rc := newRunCfg(opts)
	if trials <= 0 {
		trials = 500
	}
	const gadget = 0x6666_0000

	rows, err := harness.Map(rc.pool, 2, seed, func(sh harness.Shard) (E11Row, error) {
		rng := sim.New(sh.Seed).RNG()
		if sh.Index == 0 {
			// Plain stack: every corruption becomes a silent gadget
			// execution.
			row := E11Row{Config: "plain return stack", Corruptions: trials}
			for i := 0; i < trials; i++ {
				var st plainStack
				depth := rng.Intn(6) + 1
				for d := 0; d < depth; d++ {
					st.push(0x2000_0000 + uint64(rng.Intn(1<<16)))
				}
				st.corrupt(rng.Intn(depth), gadget)
				for d := 0; d < depth; d++ {
					if st.pop() == gadget {
						row.GadgetRuns++
					}
				}
			}
			return row, nil
		}

		// PAC-protected stack: corruption trips authentication.
		row := E11Row{Config: "PAC-protected return stack", Corruptions: trials}
		key := ptrauth.NewKey([]byte("device-root"), "ia")
		for i := 0; i < trials; i++ {
			st := ptrauth.NewReturnStack(key)
			depth := rng.Intn(6) + 1
			for d := 0; d < depth; d++ {
				if err := st.Push(0x2000_0000 + uint64(rng.Intn(1<<16))); err != nil {
					return E11Row{}, err
				}
			}
			// The attacker overwrites a stored (signed) entry with the
			// raw gadget address — they do not hold the PAC key, so the
			// best they can do is guess the PAC bits.
			st.Corrupt(rng.Intn(depth), gadget|uint64(rng.Intn(1<<16))<<48)
			caught := false
			for d := 0; d < depth; d++ {
				addr, err := st.Pop()
				if err != nil {
					if !errors.Is(err, ptrauth.ErrAuthFailed) {
						return E11Row{}, err
					}
					caught = true
					break // the trap halts execution
				}
				if addr&0xffff_ffff == gadget {
					row.GadgetRuns++
				}
			}
			if caught {
				row.Caught++
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &E11Result{Rows: rows}

	t := report.NewTable("E11 — Return-address corruption: plain vs PAC-protected stack",
		"Configuration", "Corruptions", "Caught", "Gadget executions")
	for _, r := range res.Rows {
		t.AddRow(r.Config, report.I(r.Corruptions), report.I(r.Caught), report.I(r.GadgetRuns))
	}
	res.Table = t
	return res, nil
}
