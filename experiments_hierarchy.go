package cres

import (
	"bytes"
	"fmt"
	"time"

	"cres/internal/fleet"
	"cres/internal/report"
	"cres/internal/scenario"
)

// This file implements experiment E15: hierarchical re-attestation.
// The flat fleet verifier (E8) trusts its single appraiser by fiat;
// E15 arranges the verifier shards as the leaves of a multi-tier
// hierarchy (fleet.Tree) in which every interior node verifies its
// children's signed summaries, re-merges their forwarded evidence,
// and re-signs — so a verifier forging its merged summary at any tier
// is detected and attributed by the tier above it, and the operator's
// root check closes the chain. The sweep injects exactly one lying
// mid-tier verifier per hierarchy shape and reports the detection
// latency (virtual time from the lie being signed to its parent
// catching it) across depth × fan-out, plus the signature-check and
// records-held costs the hierarchy pays for the guarantee.

// E15Shape is one hierarchy shape of the sweep.
type E15Shape struct {
	// Depth is the number of merge tiers above the leaves.
	Depth int
	// Fanout is the children per interior node.
	Fanout int
}

// E15Shapes returns the default depth × fan-out sweep; quick keeps the
// CI smoke to three shapes while still crossing a multi-tier hierarchy.
func E15Shapes(quick bool) []E15Shape {
	if quick {
		return []E15Shape{{1, 2}, {2, 2}, {2, 4}}
	}
	return []E15Shape{{1, 2}, {1, 4}, {2, 2}, {2, 4}, {3, 2}, {3, 4}}
}

// E15DevicesPerLeaf is each leaf verifier shard's device count — small
// enough that the deepest default shape stays a CI-friendly fleet,
// large enough that every leaf summary carries real anomalies for a
// liar to hide.
const E15DevicesPerLeaf = 256

// E15TreeSpec is the reference hierarchy workload for one shape: the
// E8 tamper rule (every 8th device) under a complete Depth × Fanout
// verifier tree.
func E15TreeSpec(shape E15Shape) scenario.TreeSpec {
	return scenario.TreeSpec{
		Fleet: scenario.FleetSpec{
			Name:         "e15",
			TamperEvery:  8,
			TamperOffset: 3,
		},
		Depth:          shape.Depth,
		Fanout:         shape.Fanout,
		DevicesPerLeaf: E15DevicesPerLeaf,
	}
}

// E15Config parameterizes the sweep.
type E15Config struct {
	// RootSeed seeds every run; all else derives from it.
	RootSeed int64
	// Quick selects the reduced shape sweep.
	Quick bool
}

// E15Row is one hierarchy shape's outcome: the honest run's summary
// and costs, then the forged run's detection.
type E15Row struct {
	// Depth, Fanout, Leaves and Devices fix the hierarchy shape.
	Depth, Fanout, Leaves, Devices int
	// Summary is the honest run's operator-verified fleet summary.
	Summary fleet.Summary
	// Completion is the honest run's virtual time through the operator
	// check; HierarchyOverhead is how much of it the tree added on top
	// of the flat shard completion.
	Completion, HierarchyOverhead time.Duration
	// SigChecks and MaxHeld are the honest run's verification count and
	// peak records held by any one checker.
	SigChecks, MaxHeld int
	// Liar is the injected forging verifier (an interior node).
	Liar fleet.NodeID
	// Detection is how the hierarchy caught it.
	Detection fleet.Detection
	// Attributed reports the detection named the actual liar.
	Attributed bool
	// Healed reports the forged run's final summary still equalled the
	// honest one — the excision repaired the hierarchy around the lie.
	Healed bool
}

// E15Result is the hierarchical re-attestation sweep.
type E15Result struct {
	Rows  []E15Row
	Table *report.Table
	// MaxDetectLag is the slowest detection across the sweep — the
	// headline "how long can a lie live" number.
	MaxDetectLag time.Duration
	// TotalSigChecks sums the honest runs' signature verifications.
	TotalSigChecks int
}

// RunE15Hierarchy sweeps hierarchy shapes: for each depth × fan-out it
// runs the tree honestly, then re-runs it with one mid-tier verifier
// forging its merged summary (hiding every compromise its subtree
// caught) and records the detection. The liar is the last node of
// tier 1 — the tier whose lie would erase the most evidence per node;
// for depth-1 shapes that node is the root, so those rows exercise the
// operator's own check.
func RunE15Hierarchy(cfg E15Config, opts ...RunOption) (*E15Result, error) {
	rc := newRunCfg(opts)
	res := &E15Result{}
	for _, shape := range E15Shapes(cfg.Quick) {
		ct, err := E15TreeSpec(shape).Compile()
		if err != nil {
			return nil, err
		}
		tr, err := ct.Tree(cfg.RootSeed)
		if err != nil {
			return nil, err
		}
		honest, err := tr.Run(rc.pool)
		if err != nil {
			return nil, err
		}
		if n := len(honest.Detections); n != 0 {
			return nil, fmt.Errorf("cres: E15 %dx%d: honest hierarchy produced %d detections", shape.Depth, shape.Fanout, n)
		}
		liar := fleet.NodeID{Tier: 1, Index: tr.Tiers()[1] - 1}
		forged, err := tr.RunForged(rc.pool, fleet.Forge{Node: liar, Mode: fleet.ForgeSummary})
		if err != nil {
			return nil, err
		}
		if n := len(forged.Detections); n != 1 {
			return nil, fmt.Errorf("cres: E15 %dx%d: forged hierarchy produced %d detections, want 1", shape.Depth, shape.Fanout, n)
		}
		det := forged.Detections[0]
		row := E15Row{
			Depth:             shape.Depth,
			Fanout:            shape.Fanout,
			Leaves:            tr.Leaves(),
			Devices:           honest.Summary.Devices,
			Summary:           honest.Summary,
			Completion:        honest.Completion,
			HierarchyOverhead: honest.Completion - honest.Summary.Completion,
			SigChecks:         honest.SigChecks,
			MaxHeld:           honest.MaxHeld,
			Liar:              liar,
			Detection:         det,
			Attributed:        det.Liar == liar,
			Healed: bytes.Equal(forged.Summary.AppendCanonical(nil),
				honest.Summary.AppendCanonical(nil)),
		}
		res.Rows = append(res.Rows, row)
		res.TotalSigChecks += row.SigChecks
		if det.Lag > res.MaxDetectLag {
			res.MaxDetectLag = det.Lag
		}
	}

	t := report.NewTable("E15 — Hierarchical re-attestation (verifier tree over fleet shards; one mid-tier verifier forges its merged summary)",
		"Depth", "Fanout", "Leaves", "Devices", "Caught/Tampered",
		"Completion (virtual)", "Tree overhead", "Sig checks", "Max held",
		"Liar", "Caught by", "Check", "Detect lag", "Attributed", "Healed")
	yes := func(b bool) string {
		if b {
			return "yes"
		}
		return "NO"
	}
	for _, r := range res.Rows {
		t.AddRow(report.I(r.Depth), report.I(r.Fanout), report.I(r.Leaves), report.I(r.Devices),
			fmt.Sprintf("%d/%d", r.Summary.Caught, r.Summary.Tampered),
			r.Completion.String(), r.HierarchyOverhead.String(),
			report.I(r.SigChecks), report.I(r.MaxHeld),
			r.Liar.String(), r.Detection.By.String(), r.Detection.Kind,
			r.Detection.Lag.String(), yes(r.Attributed), yes(r.Healed))
	}
	res.Table = t
	return res, nil
}
