package cres

import (
	"testing"
)

// These tests pin the harness integration contract: fanning an
// experiment across workers must not change a byte of its output, and
// sharded fleets must merge to the same totals as unsharded ones.

func TestE3DeterministicAcrossParallelism(t *testing.T) {
	serial, err := RunE3DetectionMatrix(7, WithParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunE3DetectionMatrix(7, WithParallel(8))
	if err != nil {
		t.Fatal(err)
	}
	a, b := serial.Table.Render(), parallel.Table.Render()
	if a != b {
		t.Fatalf("E3 output depends on parallelism:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

func TestE10DeterministicAcrossParallelism(t *testing.T) {
	serial, err := RunE10CovertChannel(7, WithParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunE10CovertChannel(7, WithParallel(6))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := serial.Table.Render(), parallel.Table.Render(); a != b {
		t.Fatalf("E10 output depends on parallelism:\n%s\nvs\n%s", a, b)
	}
}

// TestE8ShardedFleet crosses the fleetShardSize boundary: a 768-device
// fleet must split into two verifier shards and still catch every
// tampered device with no false alarms — including devices whose global
// index needs more than three digits in larger sweeps (the Sscanf %03d
// truncation this sweep originally shipped with).
func TestE8ShardedFleet(t *testing.T) {
	res, err := RunE8FleetAttestation([]int{768}, 7, WithParallel(2))
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row.Shards != 2 {
		t.Fatalf("768 devices split into %d shards, want 2", row.Shards)
	}
	if row.Tampered != 96 {
		t.Fatalf("tampered = %d, want 96 (1 in 8)", row.Tampered)
	}
	if row.Caught != row.Tampered {
		t.Fatalf("caught %d of %d tampered\n%s", row.Caught, row.Tampered, res.Table.Render())
	}
	if row.FalseAlarms != 0 {
		t.Fatalf("false alarms = %d", row.FalseAlarms)
	}
	if row.Completion <= 0 {
		t.Fatalf("completion = %v", row.Completion)
	}
}

func TestIsTamperedNameHandlesWideIndices(t *testing.T) {
	cases := map[string]bool{
		"device-003":   true,
		"device-004":   false,
		"device-1027":  true,  // 1027 % 8 == 3; %03d-truncated parse saw 102
		"device-1234":  false, // %03d-truncated parse saw 123 (tampered)
		"device-10243": true,
		"not-a-device": false,
	}
	for name, want := range cases {
		if got := isTamperedName(name); got != want {
			t.Errorf("isTamperedName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestFleetSizes(t *testing.T) {
	quick := FleetSizes(true)
	full := FleetSizes(false)
	if len(quick) >= len(full) {
		t.Fatal("quick sweep should be smaller than full")
	}
	if max := full[len(full)-1]; max < 10_000 {
		t.Fatalf("full sweep tops out at %d devices, want >= 10k", max)
	}
}
