package cres

import (
	"testing"
)

// These tests pin the harness integration contract: fanning an
// experiment across workers must not change a byte of its output, and
// sharded fleets must merge to the same totals as unsharded ones.

func TestE3DeterministicAcrossParallelism(t *testing.T) {
	serial, err := RunE3DetectionMatrix(7, WithParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunE3DetectionMatrix(7, WithParallel(8))
	if err != nil {
		t.Fatal(err)
	}
	a, b := serial.Table.Render(), parallel.Table.Render()
	if a != b {
		t.Fatalf("E3 output depends on parallelism:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

func TestE10DeterministicAcrossParallelism(t *testing.T) {
	serial, err := RunE10CovertChannel(7, WithParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunE10CovertChannel(7, WithParallel(6))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := serial.Table.Render(), parallel.Table.Render(); a != b {
		t.Fatalf("E10 output depends on parallelism:\n%s\nvs\n%s", a, b)
	}
}

// TestE8ShardedFleet crosses the verifier-shard boundary: a 5000-device
// fleet must split into two shards and still catch every tampered
// device with no false alarms — including devices whose global index
// needs more than three digits (the Sscanf %03d truncation class this
// sweep originally shipped with; identity is now the index itself, so
// no parse exists to truncate).
func TestE8ShardedFleet(t *testing.T) {
	res, err := RunE8FleetAttestation([]int{5000}, 7, WithParallel(2))
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row.Shards != 2 {
		t.Fatalf("5000 devices split into %d shards, want 2", row.Shards)
	}
	s := row.Summary
	if s.Tampered != 625 {
		t.Fatalf("tampered = %d, want 625 (1 in 8)", s.Tampered)
	}
	if s.Caught != s.Tampered {
		t.Fatalf("caught %d of %d tampered\n%s", s.Caught, s.Tampered, res.Table.Render())
	}
	if s.FalseAlarms != 0 {
		t.Fatalf("false alarms = %d", s.FalseAlarms)
	}
	if s.Completion <= 0 {
		t.Fatalf("completion = %v", s.Completion)
	}
}

func TestFleetSizes(t *testing.T) {
	quick := FleetSizes(true)
	full := FleetSizes(false)
	if len(quick) >= len(full) {
		t.Fatal("quick sweep should be smaller than full")
	}
	if max := full[len(full)-1]; max != 1<<20 {
		t.Fatalf("full sweep tops out at %d devices, want 1048576", max)
	}
}
