package cres

import (
	"fmt"
	"sort"
	"time"

	"cres/internal/attack"
	"cres/internal/faultmodel"
	"cres/internal/harness"
	"cres/internal/m2m"
	"cres/internal/report"
	"cres/internal/response"
	"cres/internal/scenario"
	"cres/internal/sim"
)

// This file implements E13, the networked-fleet resilience experiment:
// the first experiment where the intrusion HOPS BETWEEN devices. A
// worm (attack.Worm) compromises patient zero and schedules its
// payload on each neighbour after a dwell; the fleet answers — or
// doesn't — depending on the response mode. The sweep crosses wiring
// (scenario.TopologySpec: ring/star/mesh/random at several fanouts) ×
// dwell × mode and reports the infection outcome: peak infected,
// time-to-containment, propagation attempts blocked, links cut, and —
// the headline — devices saved by cooperative gossip relative to
// devices that defend alone. Every cell is one harness shard with its
// own engine; random wirings derive from the topology's position, not
// the cell's, so the three modes of one row always fight over the
// same graph.

// Swarm response modes.
const (
	// SwarmBaseline is the passive architecture: no monitors, no
	// response. The worm maps the reachable fleet.
	SwarmBaseline = "baseline"
	// SwarmIsolated is CRES devices defending alone: each detects and
	// contains its own compromise, but tells nobody.
	SwarmIsolated = "cres-isolated"
	// SwarmCooperative is CRES devices gossiping alert digests and
	// quarantining links towards known-compromised neighbours.
	SwarmCooperative = "cres-coop"
)

// SwarmModes returns the response modes in presentation order.
func SwarmModes() []string { return []string{SwarmBaseline, SwarmIsolated, SwarmCooperative} }

// E13Config parameterises RunE13WormResilience.
type E13Config struct {
	// RootSeed seeds the sweep; every cell derives its own engine seed
	// and every random wiring derives from its topology's position.
	RootSeed int64
	// FleetSize is the number of devices per cell (default 10; at
	// least 3 so saving anyone is possible).
	FleetSize int
	// Topologies are the wirings under test. Nil selects the default
	// sweep: ring (fanout 1 and 2), star, mesh, random (fanout 1 and
	// 2), all at FleetSize. The Size of an explicit spec is respected.
	Topologies []scenario.TopologySpec
	// Dwells are the worm's infection-to-propagation delays (default
	// 2ms and 6ms — one the gossip handily beats, one it beats asleep).
	Dwells []time.Duration
	// Modes are the response modes (default all three).
	Modes []string
	// Payload is the attack-registry scenario the worm carries
	// (default "secure-probe").
	Payload string
	// Faults is the cell-level fault campaign (lossy fabric, churn).
	// The zero spec compiles to a disabled plan and the sweep is then
	// byte-identical to a fault-free run; E14 is the sweep that
	// actually exercises this axis.
	Faults scenario.FaultSpec
	// Quick trims the sweep for smoke runs: three wirings, one dwell.
	Quick bool
}

// E13Cell is one fleet run: one wiring, one dwell, one response mode.
type E13Cell struct {
	Topology string
	Fanout   int
	Dwell    time.Duration
	Mode     string
	// Index is the cell's shard index; Seed its derived engine seed.
	Index int
	Seed  int64
	// Infected is the outbreak's final (= peak: infection is monotone)
	// compromised-device count; Saved is FleetSize - Infected.
	Infected, Saved int
	// Blocked counts propagation attempts that found their link
	// quarantined; LinksCut the quarantine gates standing at the end.
	Blocked, LinksCut int
	// Containment is virtual time from worm launch to its last
	// activity (infection or blocked attempt).
	Containment time.Duration
	// Informed counts devices that ingested at least one gossiped
	// digest — the reach of the fleet's shared evidence.
	Informed int
	// Detected reports whether patient zero's own SSM saw every
	// payload signature (structurally false on baseline).
	Detected bool
}

// E13Result is the networked-fleet resilience sweep outcome.
type E13Result struct {
	Cells []E13Cell
	Table *report.Table
	// SavedByGossip sums, over every (wiring, dwell) row, the devices
	// the cooperative mode saved beyond the isolated mode.
	SavedByGossip int
	// CoopDominatesIsolated reports whether cooperation saved strictly
	// more devices than isolated defence in EVERY (wiring, dwell) row.
	CoopDominatesIsolated bool
}

// defaultTopologies builds the sweep's wiring axis.
func defaultTopologies(n int, quick bool) []scenario.TopologySpec {
	if quick {
		return []scenario.TopologySpec{
			{Kind: scenario.TopologyRing, Size: n, Fanout: 1},
			{Kind: scenario.TopologyStar, Size: n},
			{Kind: scenario.TopologyRandom, Size: n, Fanout: 2},
		}
	}
	return []scenario.TopologySpec{
		{Kind: scenario.TopologyRing, Size: n, Fanout: 1},
		{Kind: scenario.TopologyRing, Size: n, Fanout: 2},
		{Kind: scenario.TopologyStar, Size: n},
		{Kind: scenario.TopologyMesh, Size: n},
		{Kind: scenario.TopologyRandom, Size: n, Fanout: 1},
		{Kind: scenario.TopologyRandom, Size: n, Fanout: 2},
	}
}

// RunE13WormResilience sweeps worm campaigns over fleet wirings and
// response modes. Cells fan across the harness pool in enumeration
// order — topology-major, then dwell, then mode — and merge by index,
// so the table is byte-identical at any parallelism.
func RunE13WormResilience(cfg E13Config, opts ...RunOption) (*E13Result, error) {
	rc := newRunCfg(opts)
	if cfg.FleetSize == 0 {
		cfg.FleetSize = 10
	}
	if cfg.FleetSize < 3 {
		return nil, fmt.Errorf("e13: fleet of %d cannot demonstrate saving anyone (want >= 3)", cfg.FleetSize)
	}
	if cfg.Payload == "" {
		cfg.Payload = "secure-probe"
	}
	payload, ok := attack.Get(cfg.Payload)
	if !ok {
		return nil, fmt.Errorf("e13: unknown worm payload %q", cfg.Payload)
	}
	if cfg.Topologies == nil {
		cfg.Topologies = defaultTopologies(cfg.FleetSize, cfg.Quick)
	}
	if cfg.Dwells == nil {
		cfg.Dwells = []time.Duration{2 * time.Millisecond, 6 * time.Millisecond}
		if cfg.Quick {
			cfg.Dwells = cfg.Dwells[:1]
		}
	}
	if cfg.Modes == nil {
		cfg.Modes = SwarmModes()
	}

	// Compile each wiring once, seeded by its position: the modes and
	// dwells of one row must fight over the same graph.
	topos := make([]*scenario.CompiledTopology, len(cfg.Topologies))
	for i, ts := range cfg.Topologies {
		if ts.Kind == scenario.TopologyRandom && ts.Seed == 0 {
			ts.Seed = harness.ShardSeed(cfg.RootSeed, i)
		}
		ct, err := ts.Compile()
		if err != nil {
			return nil, fmt.Errorf("e13: topology %d: %w", i, err)
		}
		topos[i] = ct
	}

	type cellSpec struct {
		topo  *scenario.CompiledTopology
		dwell time.Duration
		mode  string
	}
	var specs []cellSpec
	for _, t := range topos {
		for _, d := range cfg.Dwells {
			for _, m := range cfg.Modes {
				specs = append(specs, cellSpec{topo: t, dwell: d, mode: m})
			}
		}
	}

	plan, err := cfg.Faults.Compile()
	if err != nil {
		return nil, fmt.Errorf("e13: %w", err)
	}

	cells, err := harness.Map(rc.pool, len(specs), cfg.RootSeed, func(sh harness.Shard) (E13Cell, error) {
		sp := specs[sh.Index]
		cell, _, _, err := runSwarmCell(sp.topo, sp.dwell, sp.mode, payload, sh.Seed, plan, nil)
		if err != nil {
			return E13Cell{}, fmt.Errorf("e13 %s/f%d/%v/%s: %w", sp.topo.Spec.Kind, sp.topo.Spec.Fanout, sp.dwell, sp.mode, err)
		}
		cell.Index = sh.Index
		cell.Seed = sh.Seed
		return cell, nil
	})
	if err != nil {
		return nil, err
	}

	res := &E13Result{Cells: cells, CoopDominatesIsolated: true}
	// Rows group the modes of one (wiring, dwell) pair. Key by the
	// cell's position — modes are the innermost enumeration axis — not
	// by (kind, fanout, dwell) strings, which collide for user-supplied
	// specs differing only in seed or size.
	saved := make(map[int]map[string]int) // row index -> mode -> saved
	for _, c := range cells {
		row := c.Index / len(cfg.Modes)
		if saved[row] == nil {
			saved[row] = make(map[string]int)
		}
		saved[row][c.Mode] = c.Saved
	}
	for _, byMode := range saved {
		coop, hasCoop := byMode[SwarmCooperative]
		iso, hasIso := byMode[SwarmIsolated]
		if !hasCoop || !hasIso {
			continue
		}
		res.SavedByGossip += coop - iso
		if coop <= iso {
			res.CoopDominatesIsolated = false
		}
	}

	t := report.NewTable(
		fmt.Sprintf("E13 — Networked-fleet resilience: %q worm over %d-device fleets (root seed %d)",
			cfg.Payload, cfg.FleetSize, cfg.RootSeed),
		"Topology", "Fanout", "Dwell", "Mode", "Infected", "Saved", "Blocked", "Links cut", "Containment", "Informed")
	for _, c := range cells {
		fanout := "-"
		if c.Topology == scenario.TopologyRing || c.Topology == scenario.TopologyRandom {
			fanout = report.I(c.Fanout)
		}
		t.AddRow(c.Topology, fanout, c.Dwell.String(), c.Mode,
			report.I(c.Infected), report.I(c.Saved), report.I(c.Blocked), report.I(c.LinksCut),
			c.Containment.String(), report.I(c.Informed))
	}
	t.AddRow("TOTAL", "-", "-", "coop vs isolated", "-",
		fmt.Sprintf("+%d", res.SavedByGossip), "-", "-", "-", "dominates: "+yn(res.CoopDominatesIsolated))
	res.Table = t
	return res, nil
}

// SwarmEvent is one entry of a fleet run's timeline.
type SwarmEvent struct {
	// At is virtual time since worm launch.
	At time.Duration
	// Kind is "infected", "blocked" or "quarantine".
	Kind string
	// Detail is the human-readable description.
	Detail string
}

// SwarmOutcome is one interactive fleet run: the E13 cell metrics plus
// the event timeline the sweep aggregates away.
type SwarmOutcome struct {
	Cell   E13Cell
	Events []SwarmEvent
}

// swarmTimeline records worm events with their virtual timestamps.
type swarmTimeline struct {
	rig    *swarmRig
	launch sim.VirtualTime
	events []SwarmEvent
}

var _ attack.FleetObserver = (*swarmTimeline)(nil)

// Infected implements attack.FleetObserver.
func (s *swarmTimeline) Infected(device, hop int) {
	s.events = append(s.events, SwarmEvent{
		At:     s.rig.eng.Now().Sub(s.launch),
		Kind:   "infected",
		Detail: fmt.Sprintf("%s compromised (hop %d)", swarmNodeName(device), hop),
	})
}

// Blocked implements attack.FleetObserver.
func (s *swarmTimeline) Blocked(from, to int) {
	s.events = append(s.events, SwarmEvent{
		At:     s.rig.eng.Now().Sub(s.launch),
		Kind:   "blocked",
		Detail: fmt.Sprintf("propagation %s -> %s hit quarantine gate", swarmNodeName(from), swarmNodeName(to)),
	})
}

// RunSwarm runs ONE fleet cell interactively — the cresim -topology
// mode — and returns the metrics plus the full event timeline:
// infections, blocked hops, and the quarantine cuts the cooperative
// response made, in virtual-time order. The cell itself runs through
// the same runSwarmCell the E13 sweep uses, so the interactive numbers
// can never drift from the table's.
func RunSwarm(topo scenario.TopologySpec, dwell time.Duration, mode, payloadName string, seed int64) (*SwarmOutcome, error) {
	return RunSwarmUnderFaults(topo, dwell, mode, payloadName, seed, scenario.FaultSpec{})
}

// RunSwarmUnderFaults is RunSwarm with a fault campaign layered onto
// the fabric — the cresim -faults mode. The zero spec degenerates to
// RunSwarm exactly.
func RunSwarmUnderFaults(topo scenario.TopologySpec, dwell time.Duration, mode, payloadName string, seed int64, faults scenario.FaultSpec) (*SwarmOutcome, error) {
	valid := false
	for _, m := range SwarmModes() {
		valid = valid || m == mode
	}
	if !valid {
		return nil, fmt.Errorf("cres: unknown swarm mode %q (want one of %v)", mode, SwarmModes())
	}
	if payloadName == "" {
		payloadName = "secure-probe"
	}
	payload, ok := attack.Get(payloadName)
	if !ok {
		return nil, fmt.Errorf("cres: unknown worm payload %q", payloadName)
	}
	ct, err := topo.Compile()
	if err != nil {
		return nil, err
	}
	plan, err := faults.Compile()
	if err != nil {
		return nil, err
	}
	if dwell <= 0 {
		dwell = attack.DefaultWormDwell
	}
	var tl *swarmTimeline
	cell, rig, _, err := runSwarmCell(ct, dwell, mode, payload, seed, plan, func(r *swarmRig) attack.FleetObserver {
		tl = &swarmTimeline{rig: r, launch: r.eng.Now()}
		return tl
	})
	if err != nil {
		return nil, err
	}

	out := &SwarmOutcome{Cell: cell, Events: tl.events}
	for _, dev := range rig.devs {
		if dev.Responder == nil {
			continue
		}
		for _, a := range dev.Responder.History() {
			if a.Kind != response.ActQuarantineLink {
				continue
			}
			out.Events = append(out.Events, SwarmEvent{
				At:     a.At.Sub(tl.launch),
				Kind:   "quarantine",
				Detail: fmt.Sprintf("%s cut link %s: %s", dev.Name, a.Target, a.Reason),
			})
		}
	}
	sort.SliceStable(out.Events, func(i, j int) bool {
		if out.Events[i].At != out.Events[j].At {
			return out.Events[i].At < out.Events[j].At
		}
		return out.Events[i].Detail < out.Events[j].Detail
	})
	return out, nil
}

// swarmNodeName names device i of a fleet.
func swarmNodeName(i int) string { return fmt.Sprintf("node-%02d", i) }

// swarmRig is a fleet of devices on ONE shared engine and ONE M2M
// network, wired by a compiled topology. It implements attack.Fleet.
type swarmRig struct {
	eng  *sim.Engine
	net  *m2m.Network
	topo *scenario.CompiledTopology
	devs []*Device
	tgts []*attack.Target
}

var _ attack.Fleet = (*swarmRig)(nil)

// newSwarmRig assembles and boots the fleet. Every device shares the
// engine (the fleet lives in one virtual timeline) and the network;
// trust is provisioned per topology edge, and cooperative mode gossips
// with exactly its topology neighbours.
func newSwarmRig(topo *scenario.CompiledTopology, mode string, seed int64) (*swarmRig, error) {
	eng := sim.New(seed)
	rig := &swarmRig{
		eng:  eng,
		net:  m2m.NewNetwork(eng, m2m.Config{}),
		topo: topo,
	}
	arch := scenario.ArchCRES
	if mode == SwarmBaseline {
		arch = scenario.ArchBaseline
	}
	n := topo.Size()
	for i := 0; i < n; i++ {
		dev, err := NewDeviceFromSpec(
			scenario.DeviceSpec{Name: swarmNodeName(i), Arch: arch},
			WithEngine(eng), WithNetwork(rig.net))
		if err != nil {
			return nil, err
		}
		rig.devs = append(rig.devs, dev)
	}
	// Trust per edge, both directions.
	for _, e := range topo.Edges() {
		a, b := rig.devs[e[0]], rig.devs[e[1]]
		a.Endpoint.Trust(b.Name, b.Endpoint.PublicKey())
		b.Endpoint.Trust(a.Name, a.Endpoint.PublicKey())
	}
	if mode == SwarmCooperative {
		for i, dev := range rig.devs {
			peers := make([]string, 0, len(topo.Neighbors(i)))
			for _, j := range topo.Neighbors(i) {
				peers = append(peers, swarmNodeName(j))
			}
			if err := dev.EnableCooperation(peers...); err != nil {
				return nil, err
			}
		}
	}
	for _, dev := range rig.devs {
		if _, err := dev.Boot(); err != nil {
			return nil, err
		}
		rig.tgts = append(rig.tgts, dev.Target())
	}
	return rig, nil
}

// Size implements attack.Fleet.
func (r *swarmRig) Size() int { return len(r.devs) }

// Neighbors implements attack.Fleet.
func (r *swarmRig) Neighbors(i int) []int { return r.topo.Neighbors(i) }

// Target implements attack.Fleet.
func (r *swarmRig) Target(i int) *attack.Target { return r.tgts[i] }

// LinkUp implements attack.Fleet: the worm crosses exactly the links
// the quarantine gates have not cut.
func (r *swarmRig) LinkUp(i, j int) bool {
	return r.net.LinkUp(swarmNodeName(i), swarmNodeName(j))
}

// runSwarmCell runs one (wiring, dwell, mode) fleet: launch the worm
// on patient zero, simulate until every possible propagation has long
// expired, then read the outbreak. The E13 sweep, the E14 fault sweep
// and the interactive RunSwarm path all come through here; mkObs (may
// be nil) builds a worm observer once the rig exists, so callers can
// record the event timeline the sweep aggregates away.
//
// plan (may be nil) is the cell's fault campaign. A nil or disabled
// plan wires NOTHING — no injector, no churn, no gossip redundancy —
// so a zero-rate fault run is byte-identical to the pre-fault
// behaviour. An enabled plan installs the seeded fabric injector,
// schedules the crash-and-reboot churn relative to worm launch, and
// arms redundant gossip with the plan's deterministic backoff.
func runSwarmCell(topo *scenario.CompiledTopology, dwell time.Duration, mode string, payload attack.Scenario, seed int64, plan *faultmodel.Plan, mkObs func(*swarmRig) attack.FleetObserver) (E13Cell, *swarmRig, *attack.Outbreak, error) {
	cell := E13Cell{
		Topology: topo.Spec.Kind,
		Fanout:   topo.Spec.Fanout,
		Dwell:    dwell,
		Mode:     mode,
	}
	rig, err := newSwarmRig(topo, mode, seed)
	if err != nil {
		return cell, nil, nil, err
	}
	if plan != nil && plan.Enabled() {
		rig.net.SetFaultInjector(plan.NewInjector())
		for _, c := range plan.CrashSchedule(topo.Size()) {
			c := c
			name := swarmNodeName(c.Device)
			rig.eng.MustSchedule(c.At, func() { rig.net.SetNodeDown(name, true) })    //nolint:errcheck // node names are the rig's own
			rig.eng.MustSchedule(c.Back, func() { rig.net.SetNodeDown(name, false) }) //nolint:errcheck // node names are the rig's own
		}
		for _, dev := range rig.devs {
			if dev.SSM == nil {
				continue
			}
			dev := dev
			dev.SetGossipRedundancy(2, func(k int) time.Duration {
				return plan.Backoff("gossip|"+dev.Name, k)
			})
		}
	}
	var obs attack.FleetObserver
	if mkObs != nil {
		obs = mkObs(rig)
	}
	worm := attack.Worm{
		PlanName: "worm-" + payload.Name(),
		Desc:     "E13 propagating intrusion",
		Payload:  payload,
		Dwell:    dwell,
	}
	outbreak, err := worm.LaunchFleet(rig, 0, obs)
	if err != nil {
		return cell, nil, nil, err
	}
	// The worm's last possible hop chain is Size infections; pad for
	// the payload's own activity and the gossip in flight.
	rig.eng.RunFor(time.Duration(topo.Size())*dwell + 10*time.Millisecond)

	cell.Infected = outbreak.Infections()
	cell.Saved = topo.Size() - cell.Infected
	cell.Blocked = outbreak.Blocked()
	cell.LinksCut = rig.net.QuarantinedLinks()
	cell.Containment = outbreak.LastActivity()
	for _, dev := range rig.devs {
		if dev.SSM == nil {
			continue
		}
		if dev.SSM.PeerDigestsIngested() > 0 {
			cell.Informed++
		}
	}
	if p0 := rig.devs[0]; p0.SSM != nil {
		cell.Detected = true
		for _, sig := range payload.ExpectedSignatures() {
			if _, ok := p0.SSM.FirstDetection(sig); !ok {
				cell.Detected = false
				break
			}
		}
	}
	return cell, rig, outbreak, nil
}
