package cres

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cres/internal/scenario"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// TestCompiledCampaignGolden pins a compiled campaign's rendered table
// two ways: byte-identical between -parallel 1 and 8 (the determinism
// contract the declarative layer inherits from the harness), and
// byte-identical to the committed golden file (so an accidental change
// to spec compilation, cell enumeration, seed derivation or rendering
// shows up as a readable diff). Regenerate with:
//
//	go test -run TestCompiledCampaignGolden -update-golden .
//
// The table holds only virtual-time quantities, so it is stable across
// hosts and Go releases.
func TestCompiledCampaignGolden(t *testing.T) {
	cfg := CampaignConfig{
		RootSeed:  7,
		Seeds:     2,
		Scenarios: []string{"secure-probe", "firmware-tamper"},
		Plans:     scenario.BuiltinPlans()[:1],
	}
	serial, err := RunE12Campaign(cfg, WithParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunE12Campaign(cfg, WithParallel(8))
	if err != nil {
		t.Fatal(err)
	}
	got := serial.Table.Render()
	if p := parallel.Table.Render(); got != p {
		t.Fatalf("compiled campaign table depends on parallelism:\n--- p1 ---\n%s\n--- p8 ---\n%s", got, p)
	}

	golden := filepath.Join("testdata", "campaign_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("compiled campaign table drifted from %s (re-run with -update-golden if intended):\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}
