module cres

go 1.24
