package cres

import (
	"errors"
	"time"

	"cres/internal/attack"
	"cres/internal/boot"
	"cres/internal/harness"
	"cres/internal/report"
)

// This file implements experiments E6 (recovery strategies) and E7
// (anti-rollback vs the downgrade attack).

// E6Row is one recovery strategy's outcome.
type E6Row struct {
	Strategy string
	// TimeToHealthy is virtual time from compromise to restored
	// service.
	TimeToHealthy time.Duration
	// CriticalOutage is how long the critical service was down.
	CriticalOutage time.Duration
	// RemovesCompromise reports whether the strategy actually evicts
	// the attacker (a plain reboot does not).
	RemovesCompromise bool
}

// E6Result compares recovery strategies.
type E6Result struct {
	Rows  []E6Row
	Table *report.Table
}

// RunE6Recovery measures time-to-healthy for three strategies after a
// code-injection compromise:
//
//   - cres-isolate-restore: SSM contains the core, operator restores it
//     after verification (targeted recovery; critical service never
//     drops thanks to the fallback).
//   - cres-rollforward: staged v2 firmware update activated through the
//     boot chain (removes the compromise; outage = activation reboot).
//   - baseline-reboot: power cycle back into the SAME firmware — fast to
//     describe, slow in outage, and the vulnerability persists.
//
// Each strategy runs on its own shard.
func RunE6Recovery(seed int64, opts ...RunOption) (*E6Result, error) {
	rc := newRunCfg(opts)
	strategies := []func(harness.Shard) (E6Row, error){e6IsolateRestore, e6RollForward, e6BaselineReboot}
	rows, err := harness.Map(rc.pool, len(strategies), seed, func(sh harness.Shard) (E6Row, error) {
		return strategies[sh.Index](sh)
	})
	if err != nil {
		return nil, err
	}
	res := &E6Result{Rows: rows}

	t := report.NewTable("E6 — Recovery strategies after compromise",
		"Strategy", "Time to healthy", "Critical-service outage", "Removes compromise")
	for _, r := range res.Rows {
		t.AddRow(r.Strategy, r.TimeToHealthy.String(), r.CriticalOutage.String(), yn(r.RemovesCompromise))
	}
	res.Table = t
	return res, nil
}

// e6IsolateRestore is strategy 1: CRES isolate + targeted restore.
func e6IsolateRestore(sh harness.Shard) (E6Row, error) {
	tb, err := newTestbed(ArchCRES, sh.Seed)
	if err != nil {
		return E6Row{}, err
	}
	if err := tb.warm(15 * time.Millisecond); err != nil {
		return E6Row{}, err
	}
	compromise := tb.dev.Now()
	if err := (attack.CodeInjection{}).Launch(tb.tgt); err != nil {
		return E6Row{}, err
	}
	tb.dev.RunFor(5 * time.Millisecond) // detection + containment
	// Operator verifies and restores 10ms later.
	tb.dev.RunFor(10 * time.Millisecond)
	if err := tb.dev.Recover("app-core", "image verified clean"); err != nil {
		return E6Row{}, err
	}
	return E6Row{
		Strategy:          "cres-isolate-restore",
		TimeToHealthy:     tb.dev.Now().Sub(compromise),
		CriticalOutage:    0, // fallback carried the critical service
		RemovesCompromise: true,
	}, nil
}

// e6RollForward is strategy 2: CRES roll-forward firmware update.
func e6RollForward(sh harness.Shard) (E6Row, error) {
	tb, err := newTestbed(ArchCRES, sh.Seed)
	if err != nil {
		return E6Row{}, err
	}
	if err := tb.warm(15 * time.Millisecond); err != nil {
		return E6Row{}, err
	}
	compromise := tb.dev.Now()
	if err := (attack.CodeInjection{}).Launch(tb.tgt); err != nil {
		return E6Row{}, err
	}
	tb.dev.RunFor(5 * time.Millisecond)

	// Stage the fixed release into the inactive slot.
	fixed := boot.BuildSigned("firmware", 2, []byte("fixed release"), tb.dev.Vendor)
	rep := tb.dev.BootReport()
	if err := tb.dev.Updater.Stage(fixed, rep.BootedSlot); err != nil {
		return E6Row{}, err
	}
	// Activation: model the reboot outage explicitly.
	const rebootOutage = 200 * time.Millisecond
	tb.dev.Degrader.StopAll()
	tb.dev.RunFor(rebootOutage)
	if _, err := tb.dev.Updater.Activate(); err != nil {
		return E6Row{}, err
	}
	tb.dev.Degrader.StartAll()
	if err := tb.dev.Recover("app-core", "roll-forward to v2"); err != nil {
		return E6Row{}, err
	}
	return E6Row{
		Strategy:          "cres-rollforward",
		TimeToHealthy:     tb.dev.Now().Sub(compromise),
		CriticalOutage:    rebootOutage,
		RemovesCompromise: true,
	}, nil
}

// e6BaselineReboot is strategy 3: baseline reboot into the same
// firmware.
func e6BaselineReboot(sh harness.Shard) (E6Row, error) {
	tb, err := newTestbed(ArchBaseline, sh.Seed)
	if err != nil {
		return E6Row{}, err
	}
	if err := tb.warm(15 * time.Millisecond); err != nil {
		return E6Row{}, err
	}
	compromise := tb.dev.Now()
	if err := (attack.CodeInjection{}).Launch(tb.tgt); err != nil {
		return E6Row{}, err
	}
	// Operator notices after 20ms and power-cycles (500ms outage).
	tb.dev.RunFor(20 * time.Millisecond)
	rebootDone := false
	if err := tb.dev.Baseline.Reboot("operator power cycle", func() { rebootDone = true }); err != nil {
		return E6Row{}, err
	}
	tb.dev.RunFor(600 * time.Millisecond)
	if !rebootDone {
		return E6Row{}, errors.New("e6: baseline reboot never completed")
	}
	return E6Row{
		Strategy:          "baseline-reboot",
		TimeToHealthy:     tb.dev.Now().Sub(compromise),
		CriticalOutage:    500 * time.Millisecond,
		RemovesCompromise: false, // same vulnerable firmware boots again
	}, nil
}

// E7Row is one boot-chain configuration's outcome under downgrade.
type E7Row struct {
	Config        string
	BootedVersion uint64
	AttackSucceed bool
	Refused       bool
}

// E7Result is the anti-rollback experiment.
type E7Result struct {
	Rows  []E7Row
	Table *report.Table
}

// RunE7Rollback replays the Section IV downgrade attack against four
// boot-chain configurations: hardened, no anti-rollback, no signature
// check, and both weaknesses (the historically attacked configuration).
// Each configuration runs on its own shard.
func RunE7Rollback(seed int64, opts ...RunOption) (*E7Result, error) {
	rc := newRunCfg(opts)
	configs := []struct {
		name string
		opts boot.Options
	}{
		{"hardened (sig + anti-rollback)", boot.Options{}},
		{"weak: no anti-rollback", boot.Options{WeakNoRollbackProtection: true}},
		{"weak: no signature check", boot.Options{WeakSkipSignature: true}},
		{"weak: neither", boot.Options{WeakNoRollbackProtection: true, WeakSkipSignature: true}},
	}

	rows, err := harness.Map(rc.pool, len(configs), seed, func(sh harness.Shard) (E7Row, error) {
		cfg := configs[sh.Index]
		dev, err := NewDevice("dut", WithSeed(sh.Seed), WithBootOptions(cfg.opts), WithFirmware(5, []byte("current v5")))
		if err != nil {
			return E7Row{}, err
		}
		if _, err := dev.Boot(); err != nil {
			return E7Row{}, err
		}
		// Attacker installs a genuine-but-old v2 image in both slots
		// (out of band: flash reprogramming).
		old := boot.BuildSigned("firmware", 2, []byte("vulnerable v2"), dev.Vendor)
		if err := boot.InstallImage(dev.SoC.Mem, boot.SlotA, old); err != nil {
			return E7Row{}, err
		}
		if err := boot.InstallImage(dev.SoC.Mem, boot.SlotB, old); err != nil {
			return E7Row{}, err
		}
		dev.TPM.Reboot()
		rep, err := dev.Chain.Boot(dev.SoC.Mem, dev.TPM)

		row := E7Row{Config: cfg.name}
		if err != nil {
			row.Refused = true
		} else {
			row.BootedVersion = rep.Image.Version
			row.AttackSucceed = rep.Image.Version < 5
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &E7Result{Rows: rows}

	t := report.NewTable("E7 — Downgrade attack vs boot-chain configuration",
		"Configuration", "Booted version", "Downgrade succeeded", "Boot refused")
	for _, r := range res.Rows {
		v := "-"
		if !r.Refused {
			v = report.U(r.BootedVersion)
		}
		t.AddRow(r.Config, v, yn(r.AttackSucceed), yn(r.Refused))
	}
	res.Table = t
	return res, nil
}
