package cres

import (
	"fmt"
	"strings"

	"cres/internal/landscape"
	"cres/internal/report"
)

// This file implements experiments E1 and E2: regenerating the paper's
// two exhibits (Table I and Figure 1) from the machine-readable
// landscape model, including the derived coverage analysis that makes
// the paper's respond/recover gap a computed result.

// E1Result is the outcome of regenerating Table I.
type E1Result struct {
	// Requirements is the number of derived embedded security
	// requirements.
	Requirements int
	// Coverage is the per-function landscape coverage.
	Coverage []landscape.Coverage
	// Gaps are requirements with no existing method (the paper's
	// research gap, derived from the data).
	Gaps []string
	// Table is the regenerated Table I.
	Table *report.Table
	// CoverageTable is the derived per-function coverage summary.
	CoverageTable *report.Table
}

// RunE1TableI regenerates Table I and its coverage analysis.
func RunE1TableI() *E1Result {
	reqs := landscape.Registry()
	res := &E1Result{
		Requirements: len(reqs),
		Coverage:     landscape.ComputeCoverage(reqs),
		Gaps:         landscape.GapRequirements(reqs),
	}

	t := report.NewTable(
		"Table I — NIS principles, CSF functions, derived embedded security requirements,\nexisting landscape and CRES module realising each requirement",
		"CSF Function", "NIS Principle", "Requirement", "Existing methods", "CRES module")
	for _, r := range reqs {
		var names []string
		for _, m := range r.Existing {
			names = append(names, fmt.Sprintf("%s[%s]", m.Name, m.Category.String()[:1]))
		}
		existing := strings.Join(names, ", ")
		if existing == "" {
			existing = "— none (research gap) —"
		}
		t.AddRow(r.Function.String(), abbreviate(r.NISPrinciple, 28), r.Name, abbreviate(existing, 60), r.CRESModule)
	}
	res.Table = t

	ct := report.NewTable(
		"Derived coverage per CSF core function (methods by category; gap = requirement with no method)",
		"Function", "Requirements", "Standards", "Commercial", "Academic", "Gaps")
	for _, c := range res.Coverage {
		ct.AddRow(c.Function.String(), report.I(c.Requirements), report.I(c.Standard),
			report.I(c.Commercial), report.I(c.Academic), strings.Join(c.Gaps, ", "))
	}
	res.CoverageTable = ct
	return res
}

func abbreviate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// E2Result is the outcome of regenerating Figure 1.
type E2Result struct {
	Frameworks []landscape.Framework
	// Association maps each CSF function to its NIS principle, the
	// cross-framework linkage Figure 1 illustrates.
	Association *report.Table
	// Rendered is the text rendering of the figure.
	Rendered string
}

// RunE2Figure1 regenerates Figure 1: the three frameworks and the CSF
// function / NIS principle association.
func RunE2Figure1() *E2Result {
	res := &E2Result{Frameworks: landscape.Figure1()}

	var b strings.Builder
	b.WriteString("Figure 1 — Core security functions, principles and activities of\n")
	b.WriteString("NIST RMF, NIST CSF and NCSC NIS regulations\n\n")
	for _, f := range res.Frameworks {
		fmt.Fprintf(&b, "%s %s (%s):\n", f.Body, f.Name, f.Kind)
		for _, e := range f.Elements {
			fmt.Fprintf(&b, "    - %s\n", e)
		}
		b.WriteByte('\n')
	}
	res.Rendered = b.String()

	assoc := report.NewTable("CSF core function -> NIS principle association",
		"CSF Function", "NIS Principle")
	for _, f := range landscape.AllFunctions() {
		assoc.AddRow(f.String(), landscape.PrincipleFor(f))
	}
	res.Association = assoc
	return res
}
