package cres

import (
	"strings"
	"testing"

	"cres/internal/attack"
	"cres/internal/harness"
	"cres/internal/scenario"
)

func TestE12CampaignOutcomes(t *testing.T) {
	res, err := RunE12Campaign(CampaignConfig{RootSeed: 7, Seeds: 2}, WithParallel(4))
	if err != nil {
		t.Fatal(err)
	}
	attacks := len(attack.All()) + len(scenario.BuiltinPlans())
	if want := attacks * 2 * 2; len(res.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(res.Cells), want)
	}
	if res.CRESDetectRate != 1.0 {
		t.Fatalf("CRES detection rate = %v\n%s", res.CRESDetectRate, res.Table.Render())
	}
	if res.BaselineDetectRate != 0.0 {
		t.Fatalf("baseline detection rate = %v", res.BaselineDetectRate)
	}
	if res.CRESRecoverRate != 1.0 {
		t.Fatalf("CRES recovery rate = %v\n%s", res.CRESRecoverRate, res.Table.Render())
	}
	plans := 0
	for _, cell := range res.Cells {
		if cell.Arch == "baseline" && (cell.Responded || cell.Recovered) {
			t.Errorf("baseline cell %s claims response/recovery", cell.Scenario)
		}
		if cell.Arch == "cres" && cell.Detected && cell.Latency < 0 {
			t.Errorf("cres cell %s has negative latency", cell.Scenario)
		}
		if cell.Kind == scenario.KindPlan {
			plans++
		}
	}
	// Every built-in staged plan appears in the matrix on both
	// architectures at every seed replica.
	if want := len(scenario.BuiltinPlans()) * 2 * 2; plans != want {
		t.Fatalf("plan cells = %d, want %d", plans, want)
	}
	for _, p := range scenario.BuiltinPlans() {
		if !strings.Contains(res.Table.Render(), p.Name) {
			t.Errorf("table lacks plan row %s", p.Name)
		}
	}
}

// TestE12CampaignDeterministicAcrossParallelism is the determinism
// property the CI gate enforces end-to-end: the campaign matrix —
// staged plans included — must be byte-identical whether cells run
// serially or across 8 workers.
func TestE12CampaignDeterministicAcrossParallelism(t *testing.T) {
	cfg := CampaignConfig{RootSeed: 7, Seeds: 2,
		Scenarios: []string{"secure-probe", "firmware-tamper", "code-injection"},
		Plans:     scenario.BuiltinPlans()[:1]}
	serial, err := RunE12Campaign(cfg, WithParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunE12Campaign(cfg, WithParallel(8))
	if err != nil {
		t.Fatal(err)
	}
	a, b := serial.Table.Render(), parallel.Table.Render()
	if a != b {
		t.Fatalf("campaign output depends on parallelism:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
	for i := range serial.Cells {
		if serial.Cells[i] != parallel.Cells[i] {
			t.Fatalf("cell %d differs: %+v vs %+v", i, serial.Cells[i], parallel.Cells[i])
		}
	}
}

func TestE12CampaignDefaultsAndSubset(t *testing.T) {
	res, err := RunE12Campaign(CampaignConfig{RootSeed: 9, Seeds: 1,
		Scenarios: []string{"secure-probe"}, Plans: []scenario.AttackPlan{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d, want 2 (one scenario, two architectures)", len(res.Cells))
	}
	if !strings.Contains(res.Table.Render(), "secure-probe") {
		t.Fatal("table lacks the scenario row")
	}
	// Derived seeds must follow the documented ShardSeed contract.
	for i, cell := range res.Cells {
		if want := harness.ShardSeed(9, i); cell.Seed != want {
			t.Errorf("cell %d seed = %d, want ShardSeed(9, %d) = %d", i, cell.Seed, i, want)
		}
	}
}

// TestE12CampaignRejectsBadSpecs pins that spec validation reaches the
// public API: unknown scenario names fail compilation, not mid-run.
func TestE12CampaignRejectsBadSpecs(t *testing.T) {
	if _, err := RunE12Campaign(CampaignConfig{Seeds: 1, Scenarios: []string{"ghost"}}); err == nil {
		t.Fatal("unknown scenario name accepted")
	}
	bad := scenario.AttackPlan{Name: "p", Stages: []scenario.PlanStage{{Scenario: "ghost"}}}
	if _, err := RunE12Campaign(CampaignConfig{Seeds: 1, Plans: []scenario.AttackPlan{bad}}); err == nil {
		t.Fatal("plan with unknown stage scenario accepted")
	}
}

// TestE12CampaignHonorsSeedZero pins that root seed 0 is used as given,
// not silently replaced by a default: its derived cell seeds must differ
// from root seed 7's.
func TestE12CampaignHonorsSeedZero(t *testing.T) {
	cfg := CampaignConfig{Seeds: 1, Scenarios: []string{"secure-probe"}, Plans: []scenario.AttackPlan{}}
	zero, err := RunE12Campaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, cell := range zero.Cells {
		if want := harness.ShardSeed(0, i); cell.Seed != want {
			t.Errorf("cell %d seed = %d, want ShardSeed(0, %d) = %d", i, cell.Seed, i, want)
		}
		if aliased := harness.ShardSeed(7, i); cell.Seed == aliased {
			t.Errorf("cell %d: seed 0 campaign aliases the seed-7 stream", i)
		}
	}
}
