// Command benchdiff compares a freshly generated BENCH_perf.json
// against the committed baseline and exits non-zero on a performance
// regression — the CI guard that keeps the simulator's monitoring hot
// path from silently slowing down or re-growing heap traffic.
//
// Two checks run over the E9 monitoring-overhead rows (matched by
// configuration name):
//
//   - ns/tx: the fresh value must not exceed the baseline by more than
//     -max-regress (default 25%). With -normalize, the comparison is on
//     each configuration's overhead ratio against its own file's
//     no-monitoring row, which cancels out raw machine-speed
//     differences between the baseline host and the CI runner.
//   - allocs/tx: any fresh value above zero fails outright; the hot
//     path is allocation-free and must stay that way.
//
// A third check gates the streaming fleet engine's appraisal
// throughput (the fleet.devices_per_sec field E8 writes): the fresh
// value must not fall below the baseline by more than
// -max-fleet-regress (default 35% — host throughput is noisier than a
// ns/tx ratio). With -normalize, each file's throughput is multiplied
// by its own no-monitoring ns/tx before comparing: throughput scales
// inversely with host speed and the reference row scales directly, so
// the product cancels the machine out. Throughput is only comparable
// config-for-config, so when both reports record the engine's
// batch_size/shard_size the values must match — a mismatch fails the
// gate rather than comparing incommensurable numbers. Reports without
// a fleet section — older artifacts, or fresh runs restricted to
// -only E9 — skip this gate with a note instead of failing, so the
// check works against baselines generated before the field existed.
//
// A fourth check gates the fleet's heap allocations per appraised
// device (fleet.allocs_per_device) against an absolute budget
// (-max-fleet-allocs, default 4 — matching the internal/fleet
// allocation test). Allocation counts do not vary with host speed, so
// no normalization applies; reports lacking the field (older
// artifacts, -only E9 runs) skip the gate with a note.
//
// A fifth check gates the E15 verifier-hierarchy sweep (the hierarchy
// section): every injected lying verifier in the fresh report must be
// attributed and healed (a correctness invariant, checked regardless
// of the baseline), and when the baseline also records the section,
// per-shape signature counts and detection lags — deterministic
// virtual-time quantities — must not grow beyond -max-regress.
// Reports without the section (baselines predating the hierarchy, or
// runs without E15) skip the comparison with a note.
//
// A sixth check gates the resident service (the service section the
// SVC experiment writes): aggregate requests/sec through a loopback
// cresd must not fall more than -max-service-regress below the
// baseline. Like the fleet gate it is a host-clock quantity, so the
// tolerance is loose; reports without the section skip with a note.
//
// The -store mode gates a cresd result store against its own
// trajectory instead of comparing two reports: within every stored
// key's history the bodies must be byte-identical (the determinism
// invariant — a drift is a correctness failure, whatever the host),
// and the latest compute cost must not exceed the best prior run by
// more than -max-store-regress.
//
// Usage:
//
//	benchdiff -base BENCH_perf.json -new fresh.json [-max-regress 0.25] [-max-fleet-regress 0.35] [-max-fleet-allocs 4] [-max-service-regress 0.5] [-normalize]
//	benchdiff -store results [-max-store-regress 0.5]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cres/internal/store"
)

// benchFile mirrors the cresbench BENCH_perf.json schema (the fields
// benchdiff consumes).
type benchFile struct {
	Schema    string          `json:"schema"`
	E9        benchE9         `json:"e9"`
	Fleet     benchFleet      `json:"fleet"`
	Hierarchy *benchHierarchy `json:"hierarchy"`
	Service   *benchService   `json:"service"`
}

type benchService struct {
	Requests       int                    `json:"requests"`
	RequestsPerSec float64                `json:"requests_per_sec"`
	Endpoints      []benchServiceEndpoint `json:"endpoints"`
}

type benchServiceEndpoint struct {
	Path     string  `json:"path"`
	Requests int     `json:"requests"`
	Bytes    int     `json:"bytes"`
	BodySHA  string  `json:"body_sha"`
	NsPerReq float64 `json:"ns_per_req"`
}

type benchHierarchy struct {
	TotalSigChecks int                 `json:"total_sig_checks"`
	MaxDetectLagMs float64             `json:"max_detect_lag_ms"`
	Rows           []benchHierarchyRow `json:"rows"`
}

type benchHierarchyRow struct {
	Depth       int     `json:"depth"`
	Fanout      int     `json:"fanout"`
	SigChecks   int     `json:"sig_checks"`
	DetectLagMs float64 `json:"detect_lag_ms"`
	Attributed  bool    `json:"attributed"`
	Healed      bool    `json:"healed"`
}

type benchFleet struct {
	TotalDevices    int     `json:"total_devices"`
	DevicesPerSec   float64 `json:"devices_per_sec"`
	BatchSize       int     `json:"batch_size"`
	ShardSize       int     `json:"shard_size"`
	AllocsPerDevice float64 `json:"allocs_per_device"`
	GoVersion       string  `json:"go_version"`
	NumCPU          int     `json:"num_cpu"`
}

type benchE9 struct {
	Txs  int          `json:"txs"`
	Rows []benchE9Row `json:"rows"`
}

type benchE9Row struct {
	Config      string  `json:"config"`
	NsPerTx     float64 `json:"ns_per_tx"`
	AllocsPerTx float64 `json:"allocs_per_tx"`
}

// baselineConfig is the E9 row every other row normalizes against.
const baselineConfig = "no-monitoring"

func main() {
	basePath := flag.String("base", "BENCH_perf.json", "committed baseline report")
	newPath := flag.String("new", "", "freshly generated report to check")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum tolerated fractional ns/tx regression")
	maxFleetRegress := flag.Float64("max-fleet-regress", 0.35, "maximum tolerated fractional fleet devices/sec drop")
	maxFleetAllocs := flag.Float64("max-fleet-allocs", 4, "maximum tolerated fleet heap allocations per device")
	maxServiceRegress := flag.Float64("max-service-regress", 0.5, "maximum tolerated fractional service requests/sec drop")
	normalize := flag.Bool("normalize", false, "compare overhead ratios vs the no-monitoring row instead of raw ns/tx")
	storeDir := flag.String("store", "", "gate this cresd result store against its own trajectory instead of comparing reports")
	maxStoreRegress := flag.Float64("max-store-regress", 0.5, "maximum tolerated fractional ns/op growth over a stored key's best prior run (-store mode)")
	flag.Parse()

	var err error
	if *storeDir != "" {
		err = runStore(*storeDir, *maxStoreRegress, os.Stdout)
	} else {
		err = run(*basePath, *newPath, *maxRegress, *maxFleetRegress, *maxFleetAllocs, *maxServiceRegress, *normalize, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(basePath, newPath string, maxRegress, maxFleetRegress, maxFleetAllocs, maxServiceRegress float64, normalize bool, out *os.File) error {
	if newPath == "" {
		return fmt.Errorf("-new is required")
	}
	base, err := load(basePath)
	if err != nil {
		return err
	}
	fresh, err := load(newPath)
	if err != nil {
		return err
	}
	problems, lines := compare(base, fresh, maxRegress, normalize)
	fleetProblems, fleetLines := compareFleet(base, fresh, maxFleetRegress, normalize)
	problems = append(problems, fleetProblems...)
	lines = append(lines, fleetLines...)
	allocProblems, allocLines := compareFleetAllocs(base, fresh, maxFleetAllocs)
	problems = append(problems, allocProblems...)
	lines = append(lines, allocLines...)
	hierProblems, hierLines := compareHierarchy(base, fresh, maxRegress)
	problems = append(problems, hierProblems...)
	lines = append(lines, hierLines...)
	svcProblems, svcLines := compareService(base, fresh, maxServiceRegress)
	problems = append(problems, svcProblems...)
	lines = append(lines, svcLines...)
	for _, l := range lines {
		fmt.Fprintln(out, l)
	}
	if len(problems) > 0 {
		return fmt.Errorf("%d perf regression(s):\n  %s", len(problems), joinLines(problems))
	}
	fmt.Fprintln(out, "benchdiff: no regression")
	return nil
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.E9.Rows) == 0 {
		return nil, fmt.Errorf("%s: no E9 rows (schema %q)", path, f.Schema)
	}
	return &f, nil
}

// compare checks fresh against base and returns the failures plus a
// human-readable comparison table.
func compare(base, fresh *benchFile, maxRegress float64, normalize bool) (problems, lines []string) {
	baseRows := make(map[string]benchE9Row, len(base.E9.Rows))
	for _, r := range base.E9.Rows {
		baseRows[r.Config] = r
	}

	baseRef, freshRef := 1.0, 1.0
	if normalize {
		br, ok := baseRows[baselineConfig]
		if !ok {
			return []string{fmt.Sprintf("baseline report lacks the %q row needed by -normalize", baselineConfig)}, nil
		}
		fr, ok := findRow(fresh.E9.Rows, baselineConfig)
		if !ok {
			return []string{fmt.Sprintf("fresh report lacks the %q row needed by -normalize", baselineConfig)}, nil
		}
		if br.NsPerTx <= 0 || fr.NsPerTx <= 0 {
			return []string{fmt.Sprintf("%q ns/tx must be positive to normalize", baselineConfig)}, nil
		}
		baseRef, freshRef = br.NsPerTx, fr.NsPerTx
	}

	metric := "ns/tx"
	if normalize {
		metric = "ns/tx ratio vs " + baselineConfig
	}
	lines = append(lines, fmt.Sprintf("E9 comparison (%s, limit +%.0f%%):", metric, maxRegress*100))

	for _, fr := range fresh.E9.Rows {
		br, ok := baseRows[fr.Config]
		if !ok {
			problems = append(problems, fmt.Sprintf("config %q missing from baseline", fr.Config))
			continue
		}
		if fr.AllocsPerTx > 0 {
			problems = append(problems, fmt.Sprintf("%s: %.4f allocs/tx — hot path must stay allocation-free", fr.Config, fr.AllocsPerTx))
		}
		oldV, newV := br.NsPerTx/baseRef, fr.NsPerTx/freshRef
		delta := 0.0
		if oldV > 0 {
			delta = newV/oldV - 1
		}
		status := "ok"
		if normalize && fr.Config == baselineConfig {
			status = "reference"
		} else if delta > maxRegress {
			status = "REGRESSION"
			problems = append(problems, fmt.Sprintf("%s: %s %.3f -> %.3f (%+.1f%%, limit %+.0f%%)",
				fr.Config, metric, oldV, newV, delta*100, maxRegress*100))
		}
		lines = append(lines, fmt.Sprintf("  %-32s %10.3f -> %10.3f  (%+6.1f%%)  %s", fr.Config, oldV, newV, delta*100, status))
	}
	for _, br := range base.E9.Rows {
		if _, ok := findRow(fresh.E9.Rows, br.Config); !ok {
			problems = append(problems, fmt.Sprintf("config %q dropped from fresh report", br.Config))
		}
	}
	return problems, lines
}

// compareFleet gates the streaming fleet's appraisal throughput the
// way compare gates E9: fresh devices/sec must not fall more than
// maxRegress below the baseline. With normalize, each file's
// throughput is multiplied by its own no-monitoring ns/tx — the two
// quantities scale oppositely with host speed, so the machine cancels
// out of the product. A report without a fleet section (an older
// baseline, or a fresh run restricted to -only E9) skips the gate
// with a note: the field's absence is a provenance fact, not a
// regression.
func compareFleet(base, fresh *benchFile, maxRegress float64, normalize bool) (problems, lines []string) {
	if base.Fleet.DevicesPerSec <= 0 {
		return nil, []string{"fleet gate skipped: baseline report has no fleet section"}
	}
	if fresh.Fleet.DevicesPerSec <= 0 {
		return nil, []string{"fleet gate skipped: fresh report has no fleet section (select E8 when generating it)"}
	}
	// Throughput only compares config-for-config: a bigger batch amortizes
	// more key setup per device, so differing batching silently shifts the
	// number without any code change. Reports from before the fields
	// existed record zeros and skip the check.
	if base.Fleet.BatchSize > 0 && fresh.Fleet.BatchSize > 0 &&
		(base.Fleet.BatchSize != fresh.Fleet.BatchSize || base.Fleet.ShardSize != fresh.Fleet.ShardSize) {
		return []string{fmt.Sprintf("fleet gate: batching config differs (base batch=%d shard=%d, fresh batch=%d shard=%d) — throughput is only comparable config-for-config",
			base.Fleet.BatchSize, base.Fleet.ShardSize, fresh.Fleet.BatchSize, fresh.Fleet.ShardSize)}, nil
	}
	metric := "devices/sec"
	baseV, freshV := base.Fleet.DevicesPerSec, fresh.Fleet.DevicesPerSec
	if normalize {
		br, bok := findRow(base.E9.Rows, baselineConfig)
		fr, fok := findRow(fresh.E9.Rows, baselineConfig)
		if !bok || !fok || br.NsPerTx <= 0 || fr.NsPerTx <= 0 {
			return []string{fmt.Sprintf("fleet gate: %q ns/tx must be present and positive in both reports to normalize", baselineConfig)}, nil
		}
		metric = "devices/sec × " + baselineConfig + " ns/tx"
		baseV *= br.NsPerTx
		freshV *= fr.NsPerTx
	}
	delta := freshV/baseV - 1
	status := "ok"
	if delta < -maxRegress {
		status = "REGRESSION"
		problems = append(problems, fmt.Sprintf("fleet: %s %.3f -> %.3f (%+.1f%%, limit -%.0f%%)",
			metric, baseV, freshV, delta*100, maxRegress*100))
	}
	lines = append(lines,
		fmt.Sprintf("Fleet comparison (%s, limit -%.0f%%):", metric, maxRegress*100),
		fmt.Sprintf("  %-32s %10.3f -> %10.3f  (%+6.1f%%)  %s", "streaming-attestation", baseV, freshV, delta*100, status))
	return problems, lines
}

// compareFleetAllocs gates the fleet's heap allocations per appraised
// device against an absolute budget — the cross-binary twin of the
// internal/fleet TestBatchLoopAllocsPerDeviceO1 gate, so a return to
// per-device TPM/quote/log allocation fails CI even if only the
// benchmark job runs. The budget is absolute rather than relative
// because allocation counts, unlike wall-clock numbers, do not vary
// with host speed. A fresh report recording zero (an artifact from
// before the field existed, or an E9-only run) skips the gate with a
// note, mirroring the other absent-field rules.
func compareFleetAllocs(base, fresh *benchFile, maxAllocs float64) (problems, lines []string) {
	if fresh.Fleet.AllocsPerDevice <= 0 {
		return nil, []string{"fleet allocs gate skipped: fresh report has no allocs_per_device field"}
	}
	baseStr := "n/a"
	if base.Fleet.AllocsPerDevice > 0 {
		baseStr = fmt.Sprintf("%.2f", base.Fleet.AllocsPerDevice)
	}
	status := "ok"
	if fresh.Fleet.AllocsPerDevice > maxAllocs {
		status = "REGRESSION"
		problems = append(problems, fmt.Sprintf("fleet: %.2f allocs/device exceeds the %.0f budget", fresh.Fleet.AllocsPerDevice, maxAllocs))
	}
	lines = append(lines,
		fmt.Sprintf("Fleet allocations (allocs/device, budget %.0f):", maxAllocs),
		fmt.Sprintf("  %-32s %10s -> %10.2f  %s", "streaming-attestation", baseStr, fresh.Fleet.AllocsPerDevice, status))
	return problems, lines
}

// compareHierarchy gates the E15 verifier-hierarchy sweep. Two kinds
// of check: correctness invariants on the fresh report alone (every
// injected liar must be attributed and the summary healed — a false
// there is a broken hierarchy, whatever the baseline says), and a
// shape-for-shape cost comparison when the baseline also has the
// section: E15's signature counts and detection lags are virtual-time
// quantities, deterministic per shape, so growth beyond maxRegress
// means the protocol got structurally more expensive. A report
// without the section — a baseline from before the hierarchy existed,
// or a fresh run restricted to -only E9 — skips the comparison with a
// note, same pattern as the fleet-allocs gate.
func compareHierarchy(base, fresh *benchFile, maxRegress float64) (problems, lines []string) {
	if fresh.Hierarchy == nil {
		return nil, []string{"hierarchy gate skipped: fresh report has no hierarchy section (select E15 when generating it)"}
	}
	for _, r := range fresh.Hierarchy.Rows {
		if !r.Attributed {
			problems = append(problems, fmt.Sprintf("hierarchy %dx%d: lying verifier not attributed", r.Depth, r.Fanout))
		}
		if !r.Healed {
			problems = append(problems, fmt.Sprintf("hierarchy %dx%d: excision did not heal the fleet summary", r.Depth, r.Fanout))
		}
	}
	if base.Hierarchy == nil {
		return problems, []string{"hierarchy cost comparison skipped: baseline predates the hierarchy section"}
	}
	baseRows := make(map[[2]int]benchHierarchyRow, len(base.Hierarchy.Rows))
	for _, r := range base.Hierarchy.Rows {
		baseRows[[2]int{r.Depth, r.Fanout}] = r
	}
	lines = append(lines, fmt.Sprintf("Hierarchy comparison (sig checks and detect lag per shape, limit +%.0f%%):", maxRegress*100))
	for _, fr := range fresh.Hierarchy.Rows {
		br, ok := baseRows[[2]int{fr.Depth, fr.Fanout}]
		if !ok {
			lines = append(lines, fmt.Sprintf("  %dx%-29d %23s  new shape", fr.Depth, fr.Fanout, ""))
			continue
		}
		status := "ok"
		if br.SigChecks > 0 && float64(fr.SigChecks)/float64(br.SigChecks)-1 > maxRegress {
			status = "REGRESSION"
			problems = append(problems, fmt.Sprintf("hierarchy %dx%d: sig checks %d -> %d (limit +%.0f%%)",
				fr.Depth, fr.Fanout, br.SigChecks, fr.SigChecks, maxRegress*100))
		}
		if br.DetectLagMs > 0 && fr.DetectLagMs/br.DetectLagMs-1 > maxRegress {
			status = "REGRESSION"
			problems = append(problems, fmt.Sprintf("hierarchy %dx%d: detect lag %.3fms -> %.3fms (limit +%.0f%%)",
				fr.Depth, fr.Fanout, br.DetectLagMs, fr.DetectLagMs, maxRegress*100))
		}
		lines = append(lines, fmt.Sprintf("  %dx%-30d %6d -> %6d checks, %8.3f -> %8.3f ms lag  %s",
			fr.Depth, fr.Fanout, br.SigChecks, fr.SigChecks, br.DetectLagMs, fr.DetectLagMs, status))
	}
	return problems, lines
}

// compareService gates the resident service's scripted throughput
// (the section the SVC experiment writes): fresh requests/sec must
// not fall more than maxRegress below the baseline. Per-endpoint
// ns/req is printed for context but not gated — a single aggregate
// threshold keeps a loopback host-clock quantity from flaking CI.
// Reports without the section skip with a note, same rule as the
// fleet and hierarchy gates.
func compareService(base, fresh *benchFile, maxRegress float64) (problems, lines []string) {
	if fresh.Service == nil {
		return nil, []string{"service gate skipped: fresh report has no service section (select SVC when generating it)"}
	}
	if base.Service == nil {
		return nil, []string{"service gate skipped: baseline predates the service section"}
	}
	baseV, freshV := base.Service.RequestsPerSec, fresh.Service.RequestsPerSec
	if baseV <= 0 || freshV <= 0 {
		return []string{"service gate: requests/sec must be positive in both reports"}, nil
	}
	delta := freshV/baseV - 1
	status := "ok"
	if delta < -maxRegress {
		status = "REGRESSION"
		problems = append(problems, fmt.Sprintf("service: requests/sec %.3f -> %.3f (%+.1f%%, limit -%.0f%%)",
			baseV, freshV, delta*100, maxRegress*100))
	}
	lines = append(lines,
		fmt.Sprintf("Service comparison (requests/sec, limit -%.0f%%):", maxRegress*100),
		fmt.Sprintf("  %-32s %10.3f -> %10.3f  (%+6.1f%%)  %s", "resident-service", baseV, freshV, delta*100, status))
	baseEp := make(map[string]benchServiceEndpoint, len(base.Service.Endpoints))
	for _, ep := range base.Service.Endpoints {
		baseEp[ep.Path] = ep
	}
	for _, ep := range fresh.Service.Endpoints {
		if bp, ok := baseEp[ep.Path]; ok {
			lines = append(lines, fmt.Sprintf("  %-32s %10.0f -> %10.0f  ns/req", ep.Path, bp.NsPerReq, ep.NsPerReq))
		}
	}
	return problems, lines
}

// runStore gates a cresd result store against its own trajectory. Two
// checks per stored key: every record in the key's history must carry
// byte-identical bodies — identical (experiment, seed, config digest)
// must mean identical results, on any host, or the simulator's
// determinism contract is broken — and the latest recorded compute
// cost must not exceed the best prior run's by more than maxRegress.
// Keys with a single record have no trajectory yet and are noted, not
// failed.
func runStore(dir string, maxRegress float64, out *os.File) error {
	path := filepath.Join(dir, store.FileName)
	if _, err := os.Stat(path); err != nil {
		return fmt.Errorf("-store: no result store at %s", path)
	}
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()

	problems, lines := compareStore(st, maxRegress)
	for _, l := range lines {
		fmt.Fprintln(out, l)
	}
	if len(problems) > 0 {
		return fmt.Errorf("%d store regression(s):\n  %s", len(problems), joinLines(problems))
	}
	fmt.Fprintln(out, "benchdiff: store trajectory clean")
	return nil
}

// compareStore runs the -store mode's checks over an open store.
func compareStore(st *store.Store, maxRegress float64) (problems, lines []string) {
	keys := st.Keys()
	lines = append(lines, fmt.Sprintf("Store trajectory (%d records, %d keys; ns/op limit +%.0f%% over best prior run):",
		st.Len(), len(keys), maxRegress*100))
	for _, k := range keys {
		hist := st.History(k)
		for i := 1; i < len(hist); i++ {
			if hist[i].Body != hist[0].Body {
				problems = append(problems, fmt.Sprintf("%s: run %d body differs from run 0 — determinism broken", k, i))
			}
		}
		if len(hist) < 2 {
			lines = append(lines, fmt.Sprintf("  %-48s %27s", k, "single run, no trajectory"))
			continue
		}
		best := 0.0
		for _, r := range hist[:len(hist)-1] {
			if r.NsPerOp > 0 && (best == 0 || r.NsPerOp < best) {
				best = r.NsPerOp
			}
		}
		last := hist[len(hist)-1].NsPerOp
		if best <= 0 || last <= 0 {
			lines = append(lines, fmt.Sprintf("  %-48s %27s", k, "no ns/op recorded, skipped"))
			continue
		}
		delta := last/best - 1
		status := "ok"
		if delta > maxRegress {
			status = "REGRESSION"
			problems = append(problems, fmt.Sprintf("%s: ns/op %.0f -> %.0f (%+.1f%%, limit +%.0f%%)",
				k, best, last, delta*100, maxRegress*100))
		}
		lines = append(lines, fmt.Sprintf("  %-48s %10.0f -> %10.0f  (%+6.1f%%)  %s", k, best, last, delta*100, status))
	}
	return problems, lines
}

func findRow(rows []benchE9Row, config string) (benchE9Row, bool) {
	for _, r := range rows {
		if r.Config == config {
			return r, true
		}
	}
	return benchE9Row{}, false
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
