package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cres/internal/store"
)

func report(rows ...benchE9Row) *benchFile {
	return &benchFile{Schema: "cres-bench/v1", E9: benchE9{Txs: 200_000, Rows: rows}}
}

func row(config string, ns, allocs float64) benchE9Row {
	return benchE9Row{Config: config, NsPerTx: ns, AllocsPerTx: allocs}
}

func TestCompareNoRegression(t *testing.T) {
	base := report(row("no-monitoring", 16, 0), row("bus-monitor", 22, 0))
	fresh := report(row("no-monitoring", 17, 0), row("bus-monitor", 23, 0))
	problems, _ := compare(base, fresh, 0.25, false)
	if len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
}

func TestCompareFlagsNsRegression(t *testing.T) {
	base := report(row("no-monitoring", 16, 0), row("bus-monitor", 22, 0))
	fresh := report(row("no-monitoring", 16, 0), row("bus-monitor", 40, 0))
	problems, _ := compare(base, fresh, 0.25, false)
	if len(problems) != 1 || !strings.Contains(problems[0], "bus-monitor") {
		t.Fatalf("problems = %v, want one bus-monitor regression", problems)
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	base := report(row("no-monitoring", 16, 0))
	fresh := report(row("no-monitoring", 19.9, 0)) // +24.4%
	if problems, _ := compare(base, fresh, 0.25, false); len(problems) != 0 {
		t.Fatalf("within-threshold drift flagged: %v", problems)
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	base := report(row("no-monitoring", 16, 0), row("bus-monitor", 22, 0))
	fresh := report(row("no-monitoring", 16, 0), row("bus-monitor", 22, 0.5))
	problems, _ := compare(base, fresh, 0.25, false)
	if len(problems) != 1 || !strings.Contains(problems[0], "allocs/tx") {
		t.Fatalf("problems = %v, want one allocation regression", problems)
	}
}

// TestCompareNormalizedIgnoresMachineSpeed models a CI runner that is
// uniformly 3x slower than the baseline host: raw comparison would flag
// every row, normalized comparison must flag none — while a genuine
// monitoring-path slowdown (ratio increase) must still be caught.
func TestCompareNormalizedIgnoresMachineSpeed(t *testing.T) {
	base := report(row("no-monitoring", 16, 0), row("bus-monitor", 22, 0))
	slowHost := report(row("no-monitoring", 48, 0), row("bus-monitor", 66, 0))
	if problems, _ := compare(base, slowHost, 0.25, true); len(problems) != 0 {
		t.Fatalf("uniform slowdown flagged under -normalize: %v", problems)
	}
	if problems, _ := compare(base, slowHost, 0.25, false); len(problems) == 0 {
		t.Fatal("raw comparison should flag a 3x slower host (sanity check)")
	}

	ratioRegress := report(row("no-monitoring", 48, 0), row("bus-monitor", 120, 0)) // ratio 1.375 -> 2.5
	problems, _ := compare(base, ratioRegress, 0.25, true)
	if len(problems) != 1 || !strings.Contains(problems[0], "bus-monitor") {
		t.Fatalf("problems = %v, want one normalized regression", problems)
	}
}

func TestCompareFlagsMissingAndDroppedConfigs(t *testing.T) {
	base := report(row("no-monitoring", 16, 0), row("bus-monitor", 22, 0))
	fresh := report(row("no-monitoring", 16, 0), row("brand-new", 1, 0))
	problems, _ := compare(base, fresh, 0.25, false)
	joined := strings.Join(problems, "; ")
	if !strings.Contains(joined, "brand-new") || !strings.Contains(joined, "bus-monitor") {
		t.Fatalf("problems = %v, want missing + dropped config flagged", problems)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, f *benchFile) string {
		t.Helper()
		data, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	basePath := write("base.json", report(row("no-monitoring", 16, 0)))
	goodPath := write("good.json", report(row("no-monitoring", 16.5, 0)))
	badPath := write("bad.json", report(row("no-monitoring", 30, 0)))

	if err := run(basePath, goodPath, 0.25, 0.35, 4, 0.5, false, os.Stdout); err != nil {
		t.Fatalf("clean comparison failed: %v", err)
	}
	if err := run(basePath, badPath, 0.25, 0.35, 4, 0.5, false, os.Stdout); err == nil {
		t.Fatal("regression passed the gate")
	}
	if err := run(basePath, "", 0.25, 0.35, 4, 0.5, false, os.Stdout); err == nil {
		t.Fatal("missing -new accepted")
	}
	if err := run(basePath, filepath.Join(dir, "absent.json"), 0.25, 0.35, 4, 0.5, false, os.Stdout); err == nil {
		t.Fatal("unreadable fresh report accepted")
	}
}

// withFleet attaches a fleet section to a report.
func withFleet(f *benchFile, devicesPerSec float64) *benchFile {
	f.Fleet = benchFleet{TotalDevices: 1_000_000, DevicesPerSec: devicesPerSec}
	return f
}

func TestCompareFleetGate(t *testing.T) {
	base := withFleet(report(row("no-monitoring", 16, 0)), 10_000)

	if problems, _ := compareFleet(base, withFleet(report(row("no-monitoring", 16, 0)), 9_000), 0.35, false); len(problems) != 0 {
		t.Fatalf("-10%% throughput flagged: %v", problems)
	}
	problems, _ := compareFleet(base, withFleet(report(row("no-monitoring", 16, 0)), 5_000), 0.35, false)
	if len(problems) != 1 || !strings.Contains(problems[0], "fleet") {
		t.Fatalf("problems = %v, want one fleet regression for -50%% throughput", problems)
	}
}

// TestCompareFleetNormalizedIgnoresMachineSpeed models a CI runner
// uniformly 3x slower than the baseline host: devices/sec drops to a
// third AND no-monitoring ns/tx triples, so the normalized product is
// unchanged and must pass — while a genuine engine slowdown on the
// same slow host must still be caught.
func TestCompareFleetNormalizedIgnoresMachineSpeed(t *testing.T) {
	base := withFleet(report(row("no-monitoring", 16, 0)), 9_000)
	slowHost := withFleet(report(row("no-monitoring", 48, 0)), 3_000)
	if problems, _ := compareFleet(base, slowHost, 0.35, true); len(problems) != 0 {
		t.Fatalf("uniform slowdown flagged under -normalize: %v", problems)
	}
	if problems, _ := compareFleet(base, slowHost, 0.35, false); len(problems) == 0 {
		t.Fatal("raw comparison should flag a 3x slower host (sanity check)")
	}
	engineRegress := withFleet(report(row("no-monitoring", 48, 0)), 1_000)
	if problems, _ := compareFleet(base, engineRegress, 0.35, true); len(problems) != 1 {
		t.Fatalf("problems = %v, want one normalized fleet regression", problems)
	}
}

// TestCompareFleetConfigMismatch pins the config-for-config contract:
// when both reports record the engine batching configuration, a
// mismatch fails the gate (throughput numbers are incommensurable),
// while reports from before the fields existed (zeros) still compare.
func TestCompareFleetConfigMismatch(t *testing.T) {
	withCfg := func(f *benchFile, batch, shard int) *benchFile {
		f.Fleet.BatchSize, f.Fleet.ShardSize = batch, shard
		return f
	}
	base := withCfg(withFleet(report(row("no-monitoring", 16, 0)), 9_000), 256, 4096)
	mismatch := withCfg(withFleet(report(row("no-monitoring", 16, 0)), 9_000), 1024, 4096)
	problems, _ := compareFleet(base, mismatch, 0.35, false)
	if len(problems) != 1 || !strings.Contains(problems[0], "config") {
		t.Fatalf("problems = %v, want one batching-config mismatch", problems)
	}
	same := withCfg(withFleet(report(row("no-monitoring", 16, 0)), 8_500), 256, 4096)
	if problems, _ := compareFleet(base, same, 0.35, false); len(problems) != 0 {
		t.Fatalf("matching config flagged: %v", problems)
	}
	// A baseline predating the fields records zeros: compare anyway.
	legacy := withFleet(report(row("no-monitoring", 16, 0)), 9_000)
	if problems, _ := compareFleet(legacy, same, 0.35, false); len(problems) != 0 {
		t.Fatalf("legacy baseline without config fields flagged: %v", problems)
	}
}

// TestCompareFleetAllocsGate pins the allocs/device budget: within
// budget passes, above fails, and a fresh report without the field
// (older cresbench, or an -only E9 run) skips with a note — the same
// absent-field back-compat rule as the throughput gate.
func TestCompareFleetAllocsGate(t *testing.T) {
	withAllocs := func(a float64) *benchFile {
		f := withFleet(report(row("no-monitoring", 16, 0)), 9_000)
		f.Fleet.AllocsPerDevice = a
		return f
	}
	base := withAllocs(2.1)

	if problems, _ := compareFleetAllocs(base, withAllocs(3.5), 4); len(problems) != 0 {
		t.Fatalf("within-budget allocs flagged: %v", problems)
	}
	problems, _ := compareFleetAllocs(base, withAllocs(9.5), 4)
	if len(problems) != 1 || !strings.Contains(problems[0], "allocs/device") {
		t.Fatalf("problems = %v, want one allocs/device regression", problems)
	}
	// Absent field (zero) in the fresh report: skip, don't fail.
	problems, lines := compareFleetAllocs(base, withAllocs(0), 4)
	if len(problems) != 0 {
		t.Fatalf("absent allocs field treated as regression: %v", problems)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "skipped") {
		t.Fatalf("lines = %v, want a single skip note", lines)
	}
	// A baseline without the field still gates the fresh value.
	legacy := withFleet(report(row("no-monitoring", 16, 0)), 9_000)
	if problems, _ := compareFleetAllocs(legacy, withAllocs(9.5), 4); len(problems) != 1 {
		t.Fatalf("legacy baseline suppressed the absolute gate: %v", problems)
	}
}

// withHierarchy attaches an E15 hierarchy section to a report.
func withHierarchy(f *benchFile, rows ...benchHierarchyRow) *benchFile {
	f.Hierarchy = &benchHierarchy{Rows: rows}
	for _, r := range rows {
		f.Hierarchy.TotalSigChecks += r.SigChecks
		if r.DetectLagMs > f.Hierarchy.MaxDetectLagMs {
			f.Hierarchy.MaxDetectLagMs = r.DetectLagMs
		}
	}
	return f
}

func hierRow(depth, fanout, checks int, lagMs float64) benchHierarchyRow {
	return benchHierarchyRow{Depth: depth, Fanout: fanout, SigChecks: checks, DetectLagMs: lagMs, Attributed: true, Healed: true}
}

// TestCompareHierarchyGate pins the E15 gate: matching shapes pass,
// cost growth beyond the limit fails, and a broken correctness
// invariant (unattributed liar, unhealed summary) fails regardless of
// the baseline.
func TestCompareHierarchyGate(t *testing.T) {
	base := withHierarchy(report(row("no-monitoring", 16, 0)), hierRow(2, 4, 41, 0.71), hierRow(3, 2, 29, 0.57))
	same := withHierarchy(report(row("no-monitoring", 16, 0)), hierRow(2, 4, 41, 0.71), hierRow(3, 2, 29, 0.57))
	if problems, _ := compareHierarchy(base, same, 0.25); len(problems) != 0 {
		t.Fatalf("identical hierarchy flagged: %v", problems)
	}

	costlier := withHierarchy(report(row("no-monitoring", 16, 0)), hierRow(2, 4, 80, 0.71), hierRow(3, 2, 29, 1.9))
	problems, _ := compareHierarchy(base, costlier, 0.25)
	if len(problems) != 2 {
		t.Fatalf("problems = %v, want a sig-check and a detect-lag regression", problems)
	}

	broken := withHierarchy(report(row("no-monitoring", 16, 0)), hierRow(2, 4, 41, 0.71))
	broken.Hierarchy.Rows[0].Attributed = false
	broken.Hierarchy.Rows[0].Healed = false
	problems, _ = compareHierarchy(base, broken, 0.25)
	if len(problems) != 2 || !strings.Contains(strings.Join(problems, "; "), "attributed") {
		t.Fatalf("problems = %v, want attribution + healing failures", problems)
	}
}

// TestCompareHierarchySkipsWithoutSection pins the back-compat
// contract: a baseline from before the hierarchy existed skips the
// cost comparison (but still checks fresh invariants), and a fresh
// report without E15 skips entirely.
func TestCompareHierarchySkipsWithoutSection(t *testing.T) {
	plain := report(row("no-monitoring", 16, 0))
	withH := withHierarchy(report(row("no-monitoring", 16, 0)), hierRow(2, 4, 41, 0.71))

	problems, lines := compareHierarchy(plain, withH, 0.25)
	if len(problems) != 0 {
		t.Fatalf("pre-hierarchy baseline treated as regression: %v", problems)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "predates") {
		t.Fatalf("lines = %v, want a single predates-section note", lines)
	}
	// Fresh invariants still gate even against a pre-hierarchy baseline.
	bad := withHierarchy(report(row("no-monitoring", 16, 0)), hierRow(2, 4, 41, 0.71))
	bad.Hierarchy.Rows[0].Healed = false
	if problems, _ := compareHierarchy(plain, bad, 0.25); len(problems) != 1 {
		t.Fatalf("problems = %v, want the healing failure despite legacy baseline", problems)
	}

	problems, lines = compareHierarchy(withH, plain, 0.25)
	if len(problems) != 0 {
		t.Fatalf("E15-less fresh report treated as regression: %v", problems)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "skipped") {
		t.Fatalf("lines = %v, want a single skip note", lines)
	}
}

// withService attaches a service section to a report.
func withService(f *benchFile, reqPerSec float64) *benchFile {
	f.Service = &benchService{
		Requests:       192,
		RequestsPerSec: reqPerSec,
		Endpoints: []benchServiceEndpoint{
			{Path: "/healthz", Requests: 32, Bytes: 40, BodySHA: "aaaaaaaaaaaa", NsPerReq: 50_000},
			{Path: "/appraise?size=256&seed=7", Requests: 32, Bytes: 900, BodySHA: "bbbbbbbbbbbb", NsPerReq: 120_000},
		},
	}
	return f
}

// TestCompareServiceGate pins the resident-service gate: throughput
// within the limit passes, a collapse fails, and a report without the
// section skips with a note in either direction.
func TestCompareServiceGate(t *testing.T) {
	base := withService(report(row("no-monitoring", 16, 0)), 10_000)

	if problems, _ := compareService(base, withService(report(row("no-monitoring", 16, 0)), 7_000), 0.5); len(problems) != 0 {
		t.Fatalf("-30%% throughput flagged: %v", problems)
	}
	problems, _ := compareService(base, withService(report(row("no-monitoring", 16, 0)), 2_000), 0.5)
	if len(problems) != 1 || !strings.Contains(problems[0], "requests/sec") {
		t.Fatalf("problems = %v, want one service regression for -80%% throughput", problems)
	}

	plain := report(row("no-monitoring", 16, 0))
	for _, tc := range []struct{ base, fresh *benchFile }{{plain, base}, {base, plain}} {
		problems, lines := compareService(tc.base, tc.fresh, 0.5)
		if len(problems) != 0 {
			t.Fatalf("missing service section treated as regression: %v", problems)
		}
		if len(lines) != 1 || !strings.Contains(lines[0], "skipped") {
			t.Fatalf("lines = %v, want a single skip note", lines)
		}
	}
}

// TestCompareStoreTrajectory pins the -store mode: identical bodies
// with stable cost pass, a cost blow-up past the limit fails, and a
// body drift within one key's history is a determinism failure even
// when timings are fine.
func TestCompareStoreTrajectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []store.Record{
		// steady: two runs, same body, mild cost drift — clean.
		{Experiment: "appraise", Seed: 7, Digest: "steady", Body: "{}", NsPerOp: 100},
		{Experiment: "appraise", Seed: 7, Digest: "steady", Body: "{}", NsPerOp: 110},
		// slow: latest run costs 3x the best prior — trajectory regression.
		{Experiment: "appraise", Seed: 7, Digest: "slow", Body: "[]", NsPerOp: 100},
		{Experiment: "appraise", Seed: 7, Digest: "slow", Body: "[]", NsPerOp: 300},
		// drift: body changed between runs of one key — determinism broken.
		{Experiment: "E2", Seed: 7, Digest: "drift", Body: "a", NsPerOp: 10},
		{Experiment: "E2", Seed: 7, Digest: "drift", Body: "b", NsPerOp: 10},
		// lone: single run, nothing to compare.
		{Experiment: "E8", Seed: 7, Digest: "lone", Body: "x", NsPerOp: 10},
	}
	for _, r := range recs {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	problems, lines := compareStore(st, 0.5)
	joined := strings.Join(problems, "; ")
	if len(problems) != 2 {
		t.Fatalf("problems = %v, want the slow trajectory and the body drift", problems)
	}
	if !strings.Contains(joined, "slow") || !strings.Contains(joined, "determinism broken") {
		t.Fatalf("problems = %v, want slow + determinism failures", problems)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "single run") {
		t.Fatalf("lines = %v, want a single-run note for the lone key", lines)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	if err := runStore(dir, 0.5, os.Stdout); err == nil {
		t.Fatal("store with regressions passed the gate")
	}
	if err := runStore(filepath.Join(t.TempDir(), "absent"), 0.5, os.Stdout); err == nil {
		t.Fatal("missing store accepted")
	}

	// A clean store passes end to end.
	cleanDir := filepath.Join(t.TempDir(), "clean")
	cst, err := store.Open(cleanDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ns := range []float64{100, 110} {
		if err := cst.Append(store.Record{Experiment: "appraise", Seed: 7, Digest: "steady", Body: "{}", NsPerOp: ns}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cst.Close(); err != nil {
		t.Fatal(err)
	}
	if err := runStore(cleanDir, 0.5, os.Stdout); err != nil {
		t.Fatalf("clean store failed the gate: %v", err)
	}
}

// TestCompareFleetSkipsWithoutSection pins the back-compat contract:
// a baseline generated before the fleet field existed, or a fresh
// report from an -only E9 run, must skip the gate — not fail it.
func TestCompareFleetSkipsWithoutSection(t *testing.T) {
	noFleet := report(row("no-monitoring", 16, 0))
	withF := withFleet(report(row("no-monitoring", 16, 0)), 9_000)
	for _, tc := range []struct{ base, fresh *benchFile }{{noFleet, withF}, {withF, noFleet}} {
		problems, lines := compareFleet(tc.base, tc.fresh, 0.35, false)
		if len(problems) != 0 {
			t.Fatalf("missing fleet section treated as regression: %v", problems)
		}
		if len(lines) != 1 || !strings.Contains(lines[0], "skipped") {
			t.Fatalf("lines = %v, want a single skip note", lines)
		}
	}
}
