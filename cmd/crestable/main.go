// Command crestable regenerates the paper's two exhibits from the
// machine-readable landscape model: Table I (the requirement/landscape
// mapping with the derived respond/recover gap) and Figure 1 (the core
// security functions, principles and activities of NIST RMF, NIST CSF
// and NCSC NIS).
//
// With -store it instead renders the resident service's result store
// (see cmd/cresd): one row per stored (experiment, seed, config
// digest) key with its run count, body size and latest compute cost —
// the operator's view of what the store already holds.
//
// Usage:
//
//	crestable [-csv]
//	crestable -store results [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"cres"
	"cres/internal/report"
	"cres/internal/store"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	storeDir := flag.String("store", "", "render this result store directory instead of the paper exhibits")
	flag.Parse()
	if err := run(*csv, *storeDir); err != nil {
		fmt.Fprintln(os.Stderr, "crestable:", err)
		os.Exit(1)
	}
}

func run(csv bool, storeDir string) error {
	if storeDir != "" {
		return runStore(csv, storeDir)
	}
	e2 := cres.RunE2Figure1()
	fmt.Println(e2.Rendered)
	e1 := cres.RunE1TableI()
	if csv {
		fmt.Println(e1.Table.CSV())
		fmt.Println(e1.CoverageTable.CSV())
		fmt.Println(e2.Association.CSV())
		return nil
	}
	fmt.Println(e1.Table.Render())
	fmt.Println(e1.CoverageTable.Render())
	fmt.Println(e2.Association.Render())
	fmt.Printf("Derived research gaps (requirements with no existing method): %v\n", e1.Gaps)
	return nil
}

// runStore renders the result store as one table: a row per stored
// key, in first-appearance order. Opening a store creates one, which
// a viewer must not, so a missing store file is a usage error naming
// the path it looked at.
func runStore(csv bool, dir string) error {
	path := filepath.Join(dir, store.FileName)
	if _, err := os.Stat(path); err != nil {
		return fmt.Errorf("-store: no result store at %s (run cresd -store %s first)", path, dir)
	}
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()

	t := storeTable(st)
	if csv {
		fmt.Println(t.CSV())
		return nil
	}
	fmt.Println(t.Render())
	return nil
}

// storeTable builds the store summary table: experiment, seed and
// digest identify the cell; runs counts its history; body bytes and
// the latest ns/op describe the stored result.
func storeTable(st *store.Store) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Result store %s — %d records, %d keys", filepath.Clean(st.Dir()), st.Len(), len(st.Keys())),
		"Experiment", "Seed", "Config digest", "Runs", "Body bytes", "Last ns/op")
	for _, k := range st.Keys() {
		hist := st.History(k)
		last := hist[len(hist)-1]
		ns := "-"
		if last.NsPerOp > 0 {
			ns = report.F(last.NsPerOp)
		}
		t.AddRow(k.Experiment, strconv.FormatInt(k.Seed, 10), k.Digest,
			report.I(len(hist)), report.I(len(last.Body)), ns)
	}
	return t
}
