// Command crestable regenerates the paper's two exhibits from the
// machine-readable landscape model: Table I (the requirement/landscape
// mapping with the derived respond/recover gap) and Figure 1 (the core
// security functions, principles and activities of NIST RMF, NIST CSF
// and NCSC NIS).
//
// Usage:
//
//	crestable [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"cres"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	flag.Parse()
	if err := run(*csv); err != nil {
		fmt.Fprintln(os.Stderr, "crestable:", err)
		os.Exit(1)
	}
}

func run(csv bool) error {
	e2 := cres.RunE2Figure1()
	fmt.Println(e2.Rendered)
	e1 := cres.RunE1TableI()
	if csv {
		fmt.Println(e1.Table.CSV())
		fmt.Println(e1.CoverageTable.CSV())
		fmt.Println(e2.Association.CSV())
		return nil
	}
	fmt.Println(e1.Table.Render())
	fmt.Println(e1.CoverageTable.Render())
	fmt.Println(e2.Association.Render())
	fmt.Printf("Derived research gaps (requirements with no existing method): %v\n", e1.Gaps)
	return nil
}
