package main

import (
	"path/filepath"
	"strings"
	"testing"

	"cres/internal/store"
)

func TestRunText(t *testing.T) {
	if err := run(false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run(true, ""); err != nil {
		t.Fatal(err)
	}
}

// TestRunStoreMode pins the -store view: a populated store renders
// one row per key with its history count, and a missing store is a
// usage error, not a freshly created empty directory.
func TestRunStoreMode(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []store.Record{
		{Experiment: "appraise", Seed: 7, Digest: "aaa", Body: "{}", NsPerOp: 100},
		{Experiment: "appraise", Seed: 7, Digest: "aaa", Body: "{}", NsPerOp: 90},
		{Experiment: "E2", Seed: 7, Digest: "bbb", Body: "{...}"},
	}
	for _, r := range recs {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	tab := storeTable(st)
	if tab.Len() != 2 {
		t.Fatalf("store table has %d rows, want one per key (2)", tab.Len())
	}
	rendered := tab.Render()
	for _, want := range []string{"appraise", "E2", "3 records, 2 keys", "90.00"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("store table missing %q:\n%s", want, rendered)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	if err := run(false, dir); err != nil {
		t.Fatalf("-store render failed: %v", err)
	}
	if err := run(true, dir); err != nil {
		t.Fatalf("-store -csv render failed: %v", err)
	}
	if err := run(false, filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing store accepted")
	}
}
