package main

import "testing"

func TestRunText(t *testing.T) {
	if err := run(false); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run(true); err != nil {
		t.Fatal(err)
	}
}
