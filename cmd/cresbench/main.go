// Command cresbench runs the complete experiment suite from the
// harness registry (E1 through E15 plus BV and SVC) and prints every
// table and series — the data behind EXPERIMENTS.md.
//
// Independent simulation runs inside each experiment fan out across a
// worker pool (-parallel); shard seeds derive deterministically from
// the root seed, and results merge in shard order, so the printed
// tables are byte-identical at any parallelism — the property the CI
// determinism gate enforces by diffing -parallel=1 against -parallel=8
// (with -stable masking the host-clock cells of E9).
//
// It also emits a machine-readable benchmark artifact (BENCH_perf.json)
// recording host-CPU ns/op for each experiment and the E9 ablation's
// ns/tx and allocs/tx, which cmd/benchdiff compares against the
// committed baseline to gate perf regressions.
//
// -campaign switches to the E12 scenario campaign: every attack
// scenario and staged attack plan × {cres, baseline} × -shards seeds,
// printed as one outcome matrix. -plan selects which staged plans join
// the matrix: built-in plan names, "scenario@delay,..." custom syntax,
// or "none" (default: every built-in plan).
//
// -fleet switches to the streaming fleet sweep alone: a comma-separated
// size list ("4096,1048576") runs the E8 fleet engine at exactly those
// sizes and reports devices/sec throughput alongside the summary table.
//
// Usage:
//
//	cresbench [-seed 7] [-quick] [-parallel N] [-only E3,E9] [-stable] [-json BENCH_perf.json]
//	cresbench -campaign [-shards 3] [-seed 7] [-parallel N] [-plan implant-persist] [-json campaign.json]
//	cresbench -fleet 4096,65536 [-parallel N] [-json fleet.json] [-cpuprofile fleet.pprof]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"cres"
	"cres/internal/harness"
	"cres/internal/scenario"
	"cres/internal/service"
)

// options collects the CLI flags.
type options struct {
	seed       int64
	quick      bool
	jsonPath   string
	parallel   int
	campaign   bool
	shards     int
	plan       string
	fleet      string
	only       string
	stable     bool
	cpuprofile string
}

func main() {
	var o options
	flag.Int64Var(&o.seed, "seed", 7, "simulation root seed; shard seeds derive from it")
	flag.BoolVar(&o.quick, "quick", false, "smaller sweeps for a fast run")
	flag.StringVar(&o.jsonPath, "json", "BENCH_perf.json", "write the machine-readable report here (empty to disable)")
	flag.IntVar(&o.parallel, "parallel", 0, "worker pool size for independent simulation runs (0 = GOMAXPROCS)")
	flag.BoolVar(&o.campaign, "campaign", false, "run the E12 scenario campaign instead of the experiment suite")
	flag.IntVar(&o.shards, "shards", 3, "campaign seed replicas per attack × architecture cell")
	flag.StringVar(&o.plan, "plan", "", `campaign staged plans: built-in names, "scenario@delay,..." syntax, or "none" (default: all built-ins)`)
	flag.StringVar(&o.fleet, "fleet", "", `comma-separated fleet sizes, e.g. "4096,1048576": run the streaming fleet sweep only`)
	flag.StringVar(&o.only, "only", "", "comma-separated experiment filter, e.g. E3,E9 (suite mode)")
	flag.BoolVar(&o.stable, "stable", false, "mask host-clock readings so output is byte-identical across runs")
	flag.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile of the run to this file (pprof format)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "cresbench:", err)
		os.Exit(1)
	}
}

// benchReport is the schema of BENCH_perf.json.
type benchReport struct {
	Schema string     `json:"schema"`
	Seed   int64      `json:"seed"`
	Quick  bool       `json:"quick"`
	E9     benchE9    `json:"e9"`
	Fleet  benchFleet `json:"fleet"`
	// Hierarchy records the E15 verifier-tree sweep; nil in artifacts
	// from before the hierarchy existed, which benchdiff treats as
	// "skip", not "fail".
	Hierarchy *benchHierarchy `json:"hierarchy,omitempty"`
	// Service records the SVC resident-service bench; nil in artifacts
	// from before the service existed — the same skip-not-fail rule.
	Service     *benchService     `json:"service,omitempty"`
	Experiments []benchExperiment `json:"experiments"`
}

// benchE9 records the monitoring-overhead ablation, the paper's central
// cost argument: monitoring must be cheap enough for every transaction.
type benchE9 struct {
	Txs  int          `json:"txs"`
	Rows []benchE9Row `json:"rows"`
}

type benchE9Row struct {
	Config      string  `json:"config"`
	NsPerTx     float64 `json:"ns_per_tx"`
	AllocsPerTx float64 `json:"allocs_per_tx"`
	Alerts      uint64  `json:"alerts"`
}

type benchExperiment struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// benchFleet records the streaming fleet engine's throughput — the
// scale argument: how many device appraisals per second one host
// sustains with memory bounded by the batch size.
type benchFleet struct {
	TotalDevices  int     `json:"total_devices"`
	DevicesPerSec float64 `json:"devices_per_sec"`
	// BatchSize and ShardSize pin the engine batching configuration the
	// sweep ran with, so benchdiff only compares throughput
	// config-for-config.
	BatchSize int `json:"batch_size"`
	ShardSize int `json:"shard_size"`
	// AllocsPerDevice is the sweep's heap allocations per appraised
	// device — benchdiff gates it against an absolute budget. GoVersion
	// and NumCPU record the measurement's provenance so a trajectory
	// shift can be traced to a toolchain or host change. All three are
	// absent (zero) in artifacts from before the fields existed, which
	// benchdiff treats as "skip", not "fail".
	AllocsPerDevice float64         `json:"allocs_per_device,omitempty"`
	GoVersion       string          `json:"go_version,omitempty"`
	NumCPU          int             `json:"num_cpu,omitempty"`
	Rows            []benchFleetRow `json:"rows"`
}

type benchFleetRow struct {
	Devices      int     `json:"devices"`
	Shards       int     `json:"shards"`
	Caught       int     `json:"caught"`
	Tampered     int     `json:"tampered"`
	CompletionMs float64 `json:"completion_virtual_ms"`
}

func fleetSection(res *cres.E8Result) benchFleet {
	f := benchFleet{
		TotalDevices:    res.TotalDevices,
		DevicesPerSec:   res.DevicesPerSec(),
		BatchSize:       res.BatchSize,
		ShardSize:       res.ShardSize,
		AllocsPerDevice: res.AllocsPerDevice,
		GoVersion:       runtime.Version(),
		NumCPU:          runtime.NumCPU(),
	}
	for _, r := range res.Rows {
		f.Rows = append(f.Rows, benchFleetRow{
			Devices:      r.Devices,
			Shards:       r.Shards,
			Caught:       r.Summary.Caught,
			Tampered:     r.Summary.Tampered,
			CompletionMs: float64(r.Summary.Completion.Milliseconds()),
		})
	}
	return f
}

// benchHierarchy records the E15 hierarchical re-attestation sweep:
// per-shape detection latency for a lying mid-tier verifier plus the
// signature-check cost of the guarantee. Every number is virtual-time
// or a count, so the section is byte-stable across hosts.
type benchHierarchy struct {
	TotalSigChecks int                 `json:"total_sig_checks"`
	MaxDetectLagMs float64             `json:"max_detect_lag_ms"`
	Rows           []benchHierarchyRow `json:"rows"`
}

type benchHierarchyRow struct {
	Depth       int     `json:"depth"`
	Fanout      int     `json:"fanout"`
	Leaves      int     `json:"leaves"`
	Devices     int     `json:"devices"`
	SigChecks   int     `json:"sig_checks"`
	MaxHeld     int     `json:"max_held"`
	DetectLagMs float64 `json:"detect_lag_ms"`
	Attributed  bool    `json:"attributed"`
	Healed      bool    `json:"healed"`
}

func hierarchySection(res *cres.E15Result) *benchHierarchy {
	h := &benchHierarchy{
		TotalSigChecks: res.TotalSigChecks,
		MaxDetectLagMs: float64(res.MaxDetectLag.Microseconds()) / 1000,
	}
	for _, r := range res.Rows {
		h.Rows = append(h.Rows, benchHierarchyRow{
			Depth:       r.Depth,
			Fanout:      r.Fanout,
			Leaves:      r.Leaves,
			Devices:     r.Devices,
			SigChecks:   r.SigChecks,
			MaxHeld:     r.MaxHeld,
			DetectLagMs: float64(r.Detection.Lag.Microseconds()) / 1000,
			Attributed:  r.Attributed,
			Healed:      r.Healed,
		})
	}
	return h
}

// benchService records the SVC resident-service bench: aggregate
// requests/sec through a loopback cresd plus per-endpoint body
// fingerprints and costs. The SHAs are deterministic per (seed,
// quick); the timings are host-clock, gated loosely by benchdiff.
type benchService struct {
	Requests       int                    `json:"requests"`
	RequestsPerSec float64                `json:"requests_per_sec"`
	Endpoints      []benchServiceEndpoint `json:"endpoints"`
}

type benchServiceEndpoint struct {
	Path     string  `json:"path"`
	Requests int     `json:"requests"`
	Bytes    int     `json:"bytes"`
	BodySHA  string  `json:"body_sha"`
	NsPerReq float64 `json:"ns_per_req"`
}

func serviceSection(res *service.SVCResult) *benchService {
	s := &benchService{
		Requests:       res.Requests,
		RequestsPerSec: res.RequestsPerSec(),
	}
	for _, ep := range res.Endpoints {
		s.Endpoints = append(s.Endpoints, benchServiceEndpoint{
			Path:     ep.Path,
			Requests: ep.Requests,
			Bytes:    ep.Bytes,
			BodySHA:  ep.BodySHA,
			NsPerReq: ep.NsPerReq,
		})
	}
	return s
}

// campaignReport is the schema of the -campaign JSON artifact.
type campaignReport struct {
	Schema             string  `json:"schema"`
	Seed               int64   `json:"seed"`
	SeedsPerCell       int     `json:"seeds_per_cell"`
	Plans              int     `json:"plans"`
	Cells              int     `json:"cells"`
	CRESDetectRate     float64 `json:"cres_detect_rate"`
	CRESRecoverRate    float64 `json:"cres_recover_rate"`
	BaselineDetectRate float64 `json:"baseline_detect_rate"`
}

func run(o options) error {
	pool := harness.NewPool(o.parallel)
	if o.campaign && o.fleet != "" {
		return fmt.Errorf("-campaign and -fleet are exclusive modes")
	}
	if o.cpuprofile != "" {
		f, err := os.Create(o.cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if o.campaign {
		return runCampaign(o, pool)
	}
	if o.fleet != "" {
		return runFleet(o, pool)
	}
	return runSuite(o, pool)
}

// runSuite iterates the experiment registry in registration (print)
// order. Experiments run one after another — each fans its own shards
// across the pool — so E9's serial host-clock measurement is never
// contended by other experiments.
func runSuite(o options, pool *harness.Pool) error {
	fmt.Println("CRES experiment suite — reproduction of Siddiqui, Hagan & Sezer, IEEE SOCC 2019")
	fmt.Println()

	selected := map[string]bool{}
	for _, name := range strings.Split(o.only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			selected[name] = true
		}
	}
	for name := range selected {
		if _, ok := harness.Lookup(name); !ok {
			return fmt.Errorf("unknown experiment %q in -only (registry has %s)", name, registryNames())
		}
	}

	rep := benchReport{Schema: "cres-bench/v1", Seed: o.seed, Quick: o.quick}
	ctx := &harness.Context{Seed: o.seed, Quick: o.quick, Stable: o.stable, Pool: pool}
	for _, exp := range harness.Experiments() {
		if len(selected) > 0 && !selected[exp.Name] {
			continue
		}
		out, err := exp.Run(ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.Name, err)
		}
		// NsPerOp is measured by the runner around the computation only,
		// so the artifact tracks the simulator, not the rendering.
		rep.Experiments = append(rep.Experiments, benchExperiment{
			Name:    exp.Name,
			NsPerOp: out.NsPerOp,
		})
		for _, block := range out.Blocks {
			fmt.Println(block)
		}
		if e8, ok := out.Payload.(*cres.E8Result); ok {
			rep.Fleet = fleetSection(e8)
		}
		if e15, ok := out.Payload.(*cres.E15Result); ok {
			rep.Hierarchy = hierarchySection(e15)
		}
		if svc, ok := out.Payload.(*service.SVCResult); ok {
			rep.Service = serviceSection(svc)
		}
		if e9, ok := out.Payload.(*cres.E9Result); ok {
			rep.E9.Txs = e9.Txs
			for _, r := range e9.Rows {
				rep.E9.Rows = append(rep.E9.Rows, benchE9Row{
					Config:      r.Config,
					NsPerTx:     r.WallNsPerTx,
					AllocsPerTx: r.AllocsPerTx,
					Alerts:      r.Alerts,
				})
			}
		}
	}

	if o.jsonPath != "" {
		if err := writeJSON(o.jsonPath, &rep); err != nil {
			return err
		}
		fmt.Printf("wrote benchmark report to %s\n", o.jsonPath)
	}
	return nil
}

// runCampaign runs the E12 scenario campaign matrix.
func runCampaign(o options, pool *harness.Pool) error {
	fmt.Println("CRES scenario campaign — attack suite + staged plans × {cres, baseline} × seeds")
	fmt.Println()
	plans, err := scenario.ParsePlans(o.plan)
	if err != nil {
		return err
	}
	res, err := cres.RunE12Campaign(cres.CampaignConfig{
		RootSeed: o.seed,
		Seeds:    o.shards,
		Plans:    plans,
	}, cres.WithRunPool(pool))
	if err != nil {
		return err
	}
	fmt.Println(res.Table.Render())

	if o.jsonPath != "" {
		rep := campaignReport{
			Schema:             "cres-campaign/v1",
			Seed:               o.seed,
			SeedsPerCell:       o.shards,
			Plans:              len(plans),
			Cells:              len(res.Cells),
			CRESDetectRate:     res.CRESDetectRate,
			CRESRecoverRate:    res.CRESRecoverRate,
			BaselineDetectRate: res.BaselineDetectRate,
		}
		if err := writeJSON(o.jsonPath, &rep); err != nil {
			return err
		}
		fmt.Printf("wrote campaign report to %s\n", o.jsonPath)
	}
	return nil
}

// fleetReport is the schema of the -fleet JSON artifact.
type fleetReport struct {
	Schema string     `json:"schema"`
	Seed   int64      `json:"seed"`
	Fleet  benchFleet `json:"fleet"`
}

// runFleet runs the streaming fleet sweep at exactly the -fleet sizes.
func runFleet(o options, pool *harness.Pool) error {
	sizes, err := parseFleetSizes(o.fleet)
	if err != nil {
		return err
	}
	fmt.Println("CRES streaming fleet sweep — remote attestation at fleet scale")
	fmt.Println()
	res, err := cres.RunE8FleetAttestation(sizes, o.seed, cres.WithRunPool(pool))
	if err != nil {
		return err
	}
	fmt.Println(res.Table.Render())
	fmt.Println(res.Series.Render())
	// Throughput is a host-clock reading; mask it under -stable so the
	// determinism gates can diff -fleet output too.
	if o.stable {
		fmt.Printf("appraised %d devices (throughput masked by -stable)\n", res.TotalDevices)
	} else {
		fmt.Printf("appraised %d devices in %v (%.0f devices/sec)\n", res.TotalDevices, res.Wall.Round(time.Millisecond), res.DevicesPerSec())
	}

	if o.jsonPath != "" {
		rep := fleetReport{Schema: "cres-fleet/v1", Seed: o.seed, Fleet: fleetSection(res)}
		if err := writeJSON(o.jsonPath, &rep); err != nil {
			return err
		}
		fmt.Printf("wrote fleet report to %s\n", o.jsonPath)
	}
	return nil
}

// parseFleetSizes parses the -fleet value: a comma-separated list of
// positive device counts.
func parseFleetSizes(s string) ([]int, error) {
	var sizes []int
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		n, err := strconv.Atoi(field)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-fleet size %q: want a positive device count", field)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("-fleet value %q names no sizes", s)
	}
	return sizes, nil
}

func registryNames() string {
	var names []string
	for _, e := range harness.Experiments() {
		names = append(names, e.Name)
	}
	return strings.Join(names, ", ")
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("write report: %w", err)
	}
	return nil
}
