// Command cresbench runs the complete experiment suite (E1–E10) and
// prints every table and series — the data behind EXPERIMENTS.md.
//
// Usage:
//
//	cresbench [-seed 7] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cres"
)

func main() {
	seed := flag.Int64("seed", 7, "simulation seed")
	quick := flag.Bool("quick", false, "smaller sweeps for a fast run")
	flag.Parse()
	if err := run(*seed, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "cresbench:", err)
		os.Exit(1)
	}
}

func run(seed int64, quick bool) error {
	fmt.Println("CRES experiment suite — reproduction of Siddiqui, Hagan & Sezer, IEEE SOCC 2019")
	fmt.Println()

	// E2 then E1: the figure gives the framework context for the table.
	e2 := cres.RunE2Figure1()
	fmt.Println(e2.Rendered)
	fmt.Println(e2.Association.Render())

	e1 := cres.RunE1TableI()
	fmt.Println(e1.Table.Render())
	fmt.Println(e1.CoverageTable.Render())
	fmt.Printf("Derived research gaps: %v\n\n", e1.Gaps)

	e3, err := cres.RunE3DetectionMatrix(seed)
	if err != nil {
		return err
	}
	fmt.Println(e3.Table.Render())

	e3b, err := cres.RunE3bDetectionAblation(seed)
	if err != nil {
		return err
	}
	fmt.Println(e3b.Table.Render())

	e4, err := cres.RunE4EvidenceContinuity(seed)
	if err != nil {
		return err
	}
	fmt.Println(e4.Table.Render())

	window := 600 * time.Millisecond
	if quick {
		window = 300 * time.Millisecond
	}
	e5, err := cres.RunE5GracefulDegradation(seed, window)
	if err != nil {
		return err
	}
	fmt.Println(e5.Table.Render())

	e6, err := cres.RunE6Recovery(seed)
	if err != nil {
		return err
	}
	fmt.Println(e6.Table.Render())

	e7, err := cres.RunE7Rollback(seed)
	if err != nil {
		return err
	}
	fmt.Println(e7.Table.Render())

	sizes := []int{4, 16, 64, 256}
	if quick {
		sizes = []int{4, 16, 64}
	}
	e8, err := cres.RunE8FleetAttestation(sizes, seed)
	if err != nil {
		return err
	}
	fmt.Println(e8.Table.Render())
	fmt.Println(e8.Series.Render())

	txs := 200_000
	if quick {
		txs = 50_000
	}
	e9, err := cres.RunE9MonitorOverhead(txs)
	if err != nil {
		return err
	}
	fmt.Println(e9.Table.Render())

	e10, err := cres.RunE10CovertChannel(seed)
	if err != nil {
		return err
	}
	fmt.Println(e10.Table.Render())
	fmt.Println(e10.Series.Render())

	e11, err := cres.RunE11PointerAuth(seed, 500)
	if err != nil {
		return err
	}
	fmt.Println(e11.Table.Render())

	return nil
}
