// Command cresbench runs the complete experiment suite (E1–E10) and
// prints every table and series — the data behind EXPERIMENTS.md.
//
// It also emits a machine-readable benchmark artifact (BENCH_perf.json)
// recording host-CPU ns/op for each experiment and the E9 ablation's
// ns/tx and allocs/tx, so the perf trajectory of the simulator's hot
// paths is tracked across PRs.
//
// Usage:
//
//	cresbench [-seed 7] [-quick] [-json BENCH_perf.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"cres"
)

func main() {
	seed := flag.Int64("seed", 7, "simulation seed")
	quick := flag.Bool("quick", false, "smaller sweeps for a fast run")
	jsonPath := flag.String("json", "BENCH_perf.json", "write the machine-readable benchmark report here (empty to disable)")
	flag.Parse()
	if err := run(*seed, *quick, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "cresbench:", err)
		os.Exit(1)
	}
}

// benchReport is the schema of BENCH_perf.json.
type benchReport struct {
	Schema      string            `json:"schema"`
	Seed        int64             `json:"seed"`
	Quick       bool              `json:"quick"`
	E9          benchE9           `json:"e9"`
	Experiments []benchExperiment `json:"experiments"`
}

// benchE9 records the monitoring-overhead ablation, the paper's central
// cost argument: monitoring must be cheap enough for every transaction.
type benchE9 struct {
	Txs  int          `json:"txs"`
	Rows []benchE9Row `json:"rows"`
}

type benchE9Row struct {
	Config      string  `json:"config"`
	NsPerTx     float64 `json:"ns_per_tx"`
	AllocsPerTx float64 `json:"allocs_per_tx"`
	Alerts      uint64  `json:"alerts"`
}

type benchExperiment struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

func run(seed int64, quick bool, jsonPath string) error {
	fmt.Println("CRES experiment suite — reproduction of Siddiqui, Hagan & Sezer, IEEE SOCC 2019")
	fmt.Println()

	report := benchReport{Schema: "cres-bench/v1", Seed: seed, Quick: quick}

	// E2 then E1: the figure gives the framework context for the table.
	e2 := cres.RunE2Figure1()
	fmt.Println(e2.Rendered)
	fmt.Println(e2.Association.Render())

	e1 := cres.RunE1TableI()
	fmt.Println(e1.Table.Render())
	fmt.Println(e1.CoverageTable.Render())
	fmt.Printf("Derived research gaps: %v\n\n", e1.Gaps)

	e3, err := timedRun(&report, "E3", func() (*cres.E3Result, error) { return cres.RunE3DetectionMatrix(seed) })
	if err != nil {
		return err
	}
	fmt.Println(e3.Table.Render())

	e3b, err := timedRun(&report, "E3b", func() (*cres.E3bResult, error) { return cres.RunE3bDetectionAblation(seed) })
	if err != nil {
		return err
	}
	fmt.Println(e3b.Table.Render())

	e4, err := timedRun(&report, "E4", func() (*cres.E4Result, error) { return cres.RunE4EvidenceContinuity(seed) })
	if err != nil {
		return err
	}
	fmt.Println(e4.Table.Render())

	window := 600 * time.Millisecond
	if quick {
		window = 300 * time.Millisecond
	}
	e5, err := timedRun(&report, "E5", func() (*cres.E5Result, error) { return cres.RunE5GracefulDegradation(seed, window) })
	if err != nil {
		return err
	}
	fmt.Println(e5.Table.Render())

	e6, err := timedRun(&report, "E6", func() (*cres.E6Result, error) { return cres.RunE6Recovery(seed) })
	if err != nil {
		return err
	}
	fmt.Println(e6.Table.Render())

	e7, err := timedRun(&report, "E7", func() (*cres.E7Result, error) { return cres.RunE7Rollback(seed) })
	if err != nil {
		return err
	}
	fmt.Println(e7.Table.Render())

	sizes := []int{4, 16, 64, 256}
	if quick {
		sizes = []int{4, 16, 64}
	}
	e8, err := timedRun(&report, "E8", func() (*cres.E8Result, error) { return cres.RunE8FleetAttestation(sizes, seed) })
	if err != nil {
		return err
	}
	fmt.Println(e8.Table.Render())
	fmt.Println(e8.Series.Render())

	txs := 200_000
	if quick {
		txs = 50_000
	}
	e9, err := timedRun(&report, "E9", func() (*cres.E9Result, error) { return cres.RunE9MonitorOverhead(txs) })
	if err != nil {
		return err
	}
	fmt.Println(e9.Table.Render())
	report.E9.Txs = txs
	for _, r := range e9.Rows {
		report.E9.Rows = append(report.E9.Rows, benchE9Row{
			Config:      r.Config,
			NsPerTx:     r.WallNsPerTx,
			AllocsPerTx: r.AllocsPerTx,
			Alerts:      r.Alerts,
		})
	}

	e10, err := timedRun(&report, "E10", func() (*cres.E10Result, error) { return cres.RunE10CovertChannel(seed) })
	if err != nil {
		return err
	}
	fmt.Println(e10.Table.Render())
	fmt.Println(e10.Series.Render())

	e11, err := timedRun(&report, "E11", func() (*cres.E11Result, error) { return cres.RunE11PointerAuth(seed, 500) })
	if err != nil {
		return err
	}
	fmt.Println(e11.Table.Render())

	if jsonPath != "" {
		if err := writeReport(jsonPath, &report); err != nil {
			return err
		}
		fmt.Printf("wrote benchmark report to %s\n", jsonPath)
	}
	return nil
}

// timedRun times one experiment's computation and appends it to the
// report. Only fn itself is measured — rendering and printing happen
// outside, so ns_per_op tracks the simulator, not the log sink.
func timedRun[T any](report *benchReport, name string, fn func() (T, error)) (T, error) {
	start := time.Now()
	out, err := fn()
	if err != nil {
		var zero T
		return zero, err
	}
	report.Experiments = append(report.Experiments, benchExperiment{
		Name:    name,
		NsPerOp: float64(time.Since(start).Nanoseconds()),
	})
	return out, nil
}

func writeReport(path string, report *benchReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal benchmark report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("write benchmark report: %w", err)
	}
	return nil
}
