package main

import "testing"

func TestRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	if err := run(7, true); err != nil {
		t.Fatal(err)
	}
}
