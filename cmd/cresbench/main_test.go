package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	jsonPath := filepath.Join(t.TempDir(), "BENCH_perf.json")
	if err := run(7, true, jsonPath); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("benchmark report not written: %v", err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("benchmark report is not valid JSON: %v", err)
	}
	if report.Schema != "cres-bench/v1" {
		t.Fatalf("report schema = %q, want cres-bench/v1", report.Schema)
	}
	if len(report.E9.Rows) != 4 {
		t.Fatalf("E9 rows = %d, want 4", len(report.E9.Rows))
	}
	for _, row := range report.E9.Rows {
		if row.NsPerTx <= 0 {
			t.Errorf("E9 %s: ns/tx = %v, want > 0", row.Config, row.NsPerTx)
		}
	}
	if len(report.Experiments) == 0 {
		t.Fatal("no per-experiment timings recorded")
	}
	for _, exp := range report.Experiments {
		if exp.NsPerOp <= 0 {
			t.Errorf("%s: ns/op = %v, want > 0", exp.Name, exp.NsPerOp)
		}
	}
}
