package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	jsonPath := filepath.Join(t.TempDir(), "BENCH_perf.json")
	if err := run(options{seed: 7, quick: true, jsonPath: jsonPath, parallel: 4, shards: 2}); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("benchmark report not written: %v", err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("benchmark report is not valid JSON: %v", err)
	}
	if report.Schema != "cres-bench/v1" {
		t.Fatalf("report schema = %q, want cres-bench/v1", report.Schema)
	}
	if len(report.E9.Rows) != 4 {
		t.Fatalf("E9 rows = %d, want 4", len(report.E9.Rows))
	}
	if report.E9.Txs != 50_000 {
		t.Fatalf("E9 txs = %d, want the quick sweep's 50000", report.E9.Txs)
	}
	for _, row := range report.E9.Rows {
		if row.NsPerTx <= 0 {
			t.Errorf("E9 %s: ns/tx = %v, want > 0", row.Config, row.NsPerTx)
		}
	}
	if len(report.Experiments) == 0 {
		t.Fatal("no per-experiment timings recorded")
	}
	for _, exp := range report.Experiments {
		if exp.NsPerOp <= 0 {
			t.Errorf("%s: ns/op = %v, want > 0", exp.Name, exp.NsPerOp)
		}
	}
}

func TestRunOnlyFilter(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "only.json")
	if err := run(options{seed: 7, quick: true, jsonPath: jsonPath, parallel: 2, only: "E7,E11", shards: 2}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Experiments) != 2 {
		t.Fatalf("experiments = %+v, want exactly E7 and E11", report.Experiments)
	}
	if report.Experiments[0].Name != "E7" || report.Experiments[1].Name != "E11" {
		t.Fatalf("filtered experiments = %+v", report.Experiments)
	}
}

func TestRunRejectsUnknownOnly(t *testing.T) {
	if err := run(options{seed: 7, quick: true, only: "E99", shards: 2}); err == nil {
		t.Fatal("unknown -only experiment accepted")
	}
}

func TestRunCampaign(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "campaign.json")
	if err := run(options{seed: 7, campaign: true, shards: 1, parallel: 4, jsonPath: jsonPath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("campaign report not written: %v", err)
	}
	var rep campaignReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "cres-campaign/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Plans != 3 {
		t.Fatalf("plans = %d, want the 3 built-ins", rep.Plans)
	}
	if rep.Cells != 28 {
		t.Fatalf("cells = %d, want 28 ((11 scenarios + 3 plans) × 2 architectures × 1 seed)", rep.Cells)
	}
	if rep.CRESDetectRate != 1.0 || rep.BaselineDetectRate != 0.0 {
		t.Fatalf("rates: cres=%v baseline=%v", rep.CRESDetectRate, rep.BaselineDetectRate)
	}
}

func TestRunCampaignCustomPlan(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "campaign.json")
	if err := run(options{seed: 7, campaign: true, shards: 1, parallel: 4,
		plan: "secure-probe@0,code-injection@5ms", jsonPath: jsonPath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep campaignReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Plans != 1 || rep.Cells != 24 {
		t.Fatalf("plans = %d cells = %d, want 1 plan / 24 cells", rep.Plans, rep.Cells)
	}
}

func TestRunCampaignRejectsBadPlan(t *testing.T) {
	if err := run(options{seed: 7, campaign: true, shards: 1, plan: "moonshot"}); err == nil {
		t.Fatal("unknown plan accepted")
	}
}

func TestRunFleetMode(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "fleet.json")
	profPath := filepath.Join(dir, "fleet.pprof")
	if err := run(options{seed: 7, fleet: "4,512", parallel: 4, jsonPath: jsonPath, stable: true, cpuprofile: profPath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("fleet report not written: %v", err)
	}
	var rep fleetReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "cres-fleet/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Fleet.TotalDevices != 4+512 {
		t.Fatalf("total devices = %d", rep.Fleet.TotalDevices)
	}
	if rep.Fleet.DevicesPerSec <= 0 {
		t.Fatalf("devices/sec = %v, want > 0", rep.Fleet.DevicesPerSec)
	}
	if len(rep.Fleet.Rows) != 2 || rep.Fleet.Rows[1].Caught != 64 {
		t.Fatalf("fleet rows = %+v", rep.Fleet.Rows)
	}
	if rep.Fleet.BatchSize <= 0 || rep.Fleet.ShardSize <= 0 {
		t.Fatalf("fleet report lacks batching config: batch=%d shard=%d", rep.Fleet.BatchSize, rep.Fleet.ShardSize)
	}
	if fi, err := os.Stat(profPath); err != nil || fi.Size() == 0 {
		t.Fatalf("-cpuprofile wrote nothing: %v", err)
	}
}

func TestRunQuickRecordsFleetThroughput(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	if err := run(options{seed: 7, quick: true, only: "E8", parallel: 2, jsonPath: jsonPath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Fleet.DevicesPerSec <= 0 || rep.Fleet.TotalDevices == 0 {
		t.Fatalf("suite run recorded no fleet throughput: %+v", rep.Fleet)
	}
}

func TestRunQuickRecordsHierarchy(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	if err := run(options{seed: 7, quick: true, only: "E15", parallel: 2, jsonPath: jsonPath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Hierarchy == nil {
		t.Fatal("suite run recorded no hierarchy section")
	}
	if len(rep.Hierarchy.Rows) != 3 {
		t.Fatalf("hierarchy rows = %d, want the quick sweep's 3 shapes", len(rep.Hierarchy.Rows))
	}
	if rep.Hierarchy.TotalSigChecks <= 0 || rep.Hierarchy.MaxDetectLagMs <= 0 {
		t.Fatalf("hierarchy section lacks costs: %+v", rep.Hierarchy)
	}
	for _, r := range rep.Hierarchy.Rows {
		if !r.Attributed || !r.Healed {
			t.Errorf("shape %dx%d: attributed=%v healed=%v, want both", r.Depth, r.Fanout, r.Attributed, r.Healed)
		}
	}
	// A filtered run without E15 must leave the section nil, so old
	// baselines and new partial runs look the same to benchdiff.
	if err := run(options{seed: 7, quick: true, only: "E7", jsonPath: jsonPath}); err != nil {
		t.Fatal(err)
	}
	if data, err = os.ReadFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	rep = benchReport{}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Hierarchy != nil {
		t.Fatalf("E15-less run still wrote a hierarchy section: %+v", rep.Hierarchy)
	}
}

// TestRunQuickRecordsService pins the SVC section: an SVC-only run
// writes the resident-service bench into the report — per-endpoint
// body fingerprints plus throughput — and a run without SVC leaves
// the section nil so benchdiff's skip rule applies.
func TestRunQuickRecordsService(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	if err := run(options{seed: 7, quick: true, only: "SVC", parallel: 2, jsonPath: jsonPath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Service == nil {
		t.Fatal("SVC run recorded no service section")
	}
	if rep.Service.Requests <= 0 || rep.Service.RequestsPerSec <= 0 {
		t.Fatalf("service section lacks throughput: %+v", rep.Service)
	}
	if len(rep.Service.Endpoints) != 6 {
		t.Fatalf("service endpoints = %d, want the script's 6", len(rep.Service.Endpoints))
	}
	for _, ep := range rep.Service.Endpoints {
		if len(ep.BodySHA) != 12 || ep.Bytes <= 0 || ep.Requests <= 0 {
			t.Errorf("endpoint %s: incomplete record %+v", ep.Path, ep)
		}
	}

	if err := run(options{seed: 7, quick: true, only: "E7", jsonPath: jsonPath}); err != nil {
		t.Fatal(err)
	}
	if data, err = os.ReadFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	rep = benchReport{}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Service != nil {
		t.Fatalf("SVC-less run still wrote a service section: %+v", rep.Service)
	}
}

func TestRunRejectsFleetSizes(t *testing.T) {
	for _, bad := range []string{"0", "-5", "abc", ",,", "4096,x"} {
		if err := run(options{seed: 7, fleet: bad}); err == nil {
			t.Errorf("-fleet %q accepted", bad)
		}
	}
	if err := run(options{seed: 7, fleet: "4", campaign: true}); err == nil {
		t.Error("-fleet with -campaign accepted")
	}
}
