package main

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cres/internal/store"
)

// TestBuildRejectsUnknownExperiment pins the strict-flag contract: a
// typo in -experiment is a usage error naming every registered
// experiment, raised before any server exists.
func TestBuildRejectsUnknownExperiment(t *testing.T) {
	_, _, err := build(options{experiments: "E2,NOPE"})
	if err == nil {
		t.Fatal("-experiment NOPE accepted")
	}
	if !strings.Contains(err.Error(), "NOPE") || !strings.Contains(err.Error(), "E2") {
		t.Fatalf("error %q should name the bad value and the registry", err)
	}
	if _, _, err := build(options{experiments: " , "}); err == nil {
		t.Fatal("empty -experiment list accepted")
	}
	srv, st, err := build(options{experiments: "E2"})
	if err != nil {
		t.Fatalf("valid allowlist rejected: %v", err)
	}
	if st != nil {
		t.Fatal("store opened without -store")
	}
	_ = srv
}

// TestBuildRejectsUnusableStore pins that a -store path that cannot
// hold a store (here: an existing regular file) fails before serving.
func TestBuildRejectsUnusableStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(path, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := build(options{storeDir: path}); err == nil {
		t.Fatal("-store pointing at a file accepted")
	}
}

// TestRunRejectsBadListen pins that a malformed -listen address is a
// startup error, not a silently dead server.
func TestRunRejectsBadListen(t *testing.T) {
	err := run(options{listen: "definitely:not:an:address"}, io.Discard, nil, nil)
	if err == nil {
		t.Fatal("bad -listen accepted")
	}
	if !strings.Contains(err.Error(), "-listen") {
		t.Fatalf("error %q should name the flag", err)
	}
}

// TestRunServesDrainsAndResumes drives the binary's whole life twice:
// serve on :0, answer requests, drain on SIGINT delivery (first life)
// and on POST /quit (second life), and answer the repeated request
// from the store after the restart — byte-identical.
func TestRunServesDrainsAndResumes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	o := options{listen: "127.0.0.1:0", storeDir: dir, parallel: 2, quick: true, seed: 7}

	get := func(base, path string) (string, http.Header) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, body)
		}
		return string(body), resp.Header
	}

	// First life: compute a cell, then drain via the signal channel.
	sig := make(chan os.Signal, 1)
	started := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	var out1 bytes.Buffer
	go func() { errCh <- run(o, &out1, sig, started) }()
	addr := <-started
	base := "http://" + addr.String()
	first, hdr := get(base, "/appraise?size=64&seed=3")
	if hdr.Get("X-Cres-Cache") != "miss" {
		t.Fatalf("first appraisal cache = %q, want miss", hdr.Get("X-Cres-Cache"))
	}
	sig <- os.Interrupt
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("first life exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("signal did not drain the server")
	}
	if !strings.Contains(out1.String(), "listening on http://") || !strings.Contains(out1.String(), "drained") {
		t.Fatalf("first life output missing lifecycle lines:\n%s", out1.String())
	}

	// Second life on the same store: the repeat is a byte-identical
	// cache hit, and POST /quit drains.
	go func() { errCh <- run(o, io.Discard, nil, started) }()
	addr = <-started
	base = "http://" + addr.String()
	again, hdr := get(base, "/appraise?size=64&seed=3")
	if hdr.Get("X-Cres-Cache") != "hit" {
		t.Fatalf("restarted appraisal cache = %q, want hit", hdr.Get("X-Cres-Cache"))
	}
	if again != first {
		t.Fatalf("restart changed the response bytes:\n%q\nvs\n%q", first, again)
	}
	resp, err := http.Post(base+"/quit", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("second life exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("/quit did not drain the server")
	}

	// The store on disk holds exactly the one computed cell.
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 1 {
		t.Fatalf("store has %d records, want the 1 computed cell", st.Len())
	}
}
