// Command cresd is the resident attestation service: it keeps
// compiled fleet engines warm in memory and answers appraisal, sweep,
// campaign and topology requests over local HTTP+JSON — the
// interactive front end to the same engines and the same experiment
// registry the batch tools run.
//
// Responses are deterministic: identical requests return
// byte-identical bodies, whatever the -parallel setting, however often
// repeated, and across restarts. With -store, every computed cell is
// appended to a JSONL result store keyed (experiment, seed, config
// digest) and repeat requests — including /fleet sweep cells after an
// interrupted sweep — are answered from it without recomputation.
// GET /results lists the stored history.
//
// SIGINT/SIGTERM, or a POST /quit, drains gracefully: new requests are
// refused with 503, in-flight requests run to completion, and the
// store is flushed before exit.
//
// Every flag is validated before the listener opens: an unknown
// -experiment name, an unusable -store directory or a bad -listen
// address is a usage error naming the valid values, never a server
// that starts and then misbehaves.
//
// Usage:
//
//	cresd [-listen 127.0.0.1:8377] [-store results] [-experiment E2,E8] [-parallel N] [-quick] [-seed 7]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"cres/internal/service"
	"cres/internal/store"
)

// options collects the CLI flags.
type options struct {
	listen      string
	storeDir    string
	experiments string
	parallel    int
	quick       bool
	seed        int64
}

// shutdownTimeout bounds how long a signal-triggered drain waits for
// in-flight requests before the process gives up and exits.
const shutdownTimeout = 30 * time.Second

func main() {
	var o options
	flag.StringVar(&o.listen, "listen", "127.0.0.1:8377", "TCP address to serve on")
	flag.StringVar(&o.storeDir, "store", "results", "result store directory (empty disables persistence)")
	flag.StringVar(&o.experiments, "experiment", "", "comma-separated /run experiment allowlist (empty: every registered experiment)")
	flag.IntVar(&o.parallel, "parallel", 0, "per-request worker pool size (0 = GOMAXPROCS); never changes response bytes")
	flag.BoolVar(&o.quick, "quick", false, "reduced sweeps for /run requests that do not choose")
	flag.Int64Var(&o.seed, "seed", service.DefaultSeed, "default root seed for requests that omit seed")
	flag.Parse()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := run(o, os.Stdout, sig, nil); err != nil {
		fmt.Fprintln(os.Stderr, "cresd:", err)
		os.Exit(1)
	}
}

// build validates the flags and assembles the server and its store.
// Every usage error — an unknown -experiment name, an unusable -store
// path — surfaces here, before any listener opens. The caller owns
// closing the returned store.
func build(o options) (*service.Server, *store.Store, error) {
	var st *store.Store
	if o.storeDir != "" {
		var err error
		if st, err = store.Open(o.storeDir); err != nil {
			return nil, nil, fmt.Errorf("-store: %w", err)
		}
	}
	cfg := service.Config{
		Store:       st,
		Parallel:    o.parallel,
		Quick:       o.quick,
		DefaultSeed: o.seed,
	}
	if o.experiments != "" {
		cfg.Experiments = splitList(o.experiments)
		if len(cfg.Experiments) == 0 {
			if st != nil {
				st.Close()
			}
			return nil, nil, fmt.Errorf("-experiment value %q names no experiments", o.experiments)
		}
	}
	srv, err := service.New(cfg)
	if err != nil {
		if st != nil {
			st.Close()
		}
		// service.New's unknown-experiment error already names every
		// registered experiment.
		return nil, nil, fmt.Errorf("-experiment: %w", err)
	}
	return srv, st, nil
}

// run builds the server, opens the listener, and serves until a signal
// on sig or a /quit request drains it. The bound address is sent on
// started (when non-nil) once the listener is open — the hook tests
// use to reach a :0 listener.
func run(o options, out io.Writer, sig <-chan os.Signal, started chan<- net.Addr) error {
	srv, st, err := build(o)
	if err != nil {
		return err
	}
	if st != nil {
		defer st.Close()
	}
	l, err := net.Listen("tcp", o.listen)
	if err != nil {
		return fmt.Errorf("-listen: %w", err)
	}
	storeNote := "persistence disabled"
	if st != nil {
		storeNote = fmt.Sprintf("store %s (%d records)", filepath.Clean(st.Dir()), st.Len())
	}
	fmt.Fprintf(out, "cresd: listening on http://%s — %s\n", l.Addr(), storeNote)
	if started != nil {
		started <- l.Addr()
	}
	go func() {
		if _, ok := <-sig; !ok {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	if err := srv.Serve(l); err != nil {
		return err
	}
	stats := srv.Stats()
	fmt.Fprintf(out, "cresd: drained after %d requests (%d computed, %d cache hits, %d errors)\n",
		stats.Requests, stats.Computed, stats.CacheHits, stats.Errors)
	return nil
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, field := range strings.Split(s, ",") {
		if field = strings.TrimSpace(field); field != "" {
			out = append(out, field)
		}
	}
	return out
}
