package main

import "testing"

func TestList(t *testing.T) {
	if err := run(options{list: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleScenarioCRES(t *testing.T) {
	if err := run(options{scenario: "secure-probe", arch: "cres", seed: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleScenarioBaseline(t *testing.T) {
	if err := run(options{scenario: "secure-probe", arch: "baseline", seed: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownScenario(t *testing.T) {
	if err := run(options{scenario: "nope", arch: "cres", seed: 7}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestUnknownArchitecture(t *testing.T) {
	if err := run(options{scenario: "secure-probe", arch: "riscv", seed: 7}); err == nil {
		t.Fatal("unknown architecture accepted")
	}
}

func TestCampaignMode(t *testing.T) {
	if err := run(options{campaign: true, seed: 7, shards: 1, parallel: 2}); err != nil {
		t.Fatal(err)
	}
}
