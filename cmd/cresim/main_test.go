package main

import "testing"

func TestList(t *testing.T) {
	if err := run(options{list: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFleetSmoke(t *testing.T) {
	if err := run(options{fleet: 512, parallel: 2, seed: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTreeMode(t *testing.T) {
	if err := run(options{tree: "2:2", parallel: 2, seed: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTreeModeBadShape(t *testing.T) {
	for _, bad := range []string{"2", "2:4:8", "x:2", "2:y", "0:2", "1:1"} {
		if err := run(options{tree: bad, seed: 7}); err == nil {
			t.Errorf("-tree %q accepted", bad)
		}
	}
}

func TestRunSingleScenarioCRES(t *testing.T) {
	if err := run(options{scenario: "secure-probe", arch: "cres", seed: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleScenarioBaseline(t *testing.T) {
	if err := run(options{scenario: "secure-probe", arch: "baseline", seed: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScenarioListBothArchitectures(t *testing.T) {
	if err := run(options{scenario: "secure-probe, code-injection", arch: "both", seed: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBuiltinPlan(t *testing.T) {
	if err := run(options{plan: "network-takeover", arch: "cres", seed: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomPlanSyntax(t *testing.T) {
	if err := run(options{plan: "secure-probe@0,log-wipe@5ms*2", arch: "cres", seed: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownScenario(t *testing.T) {
	if err := run(options{scenario: "nope", arch: "cres", seed: 7}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestUnknownPlan(t *testing.T) {
	if err := run(options{plan: "nope", arch: "cres", seed: 7}); err == nil {
		t.Fatal("unknown plan accepted")
	}
}

func TestUnknownArchitecture(t *testing.T) {
	if err := run(options{scenario: "secure-probe", arch: "riscv", seed: 7}); err == nil {
		t.Fatal("unknown architecture accepted")
	}
}

func TestNothingSelected(t *testing.T) {
	if err := run(options{arch: "cres", seed: 7}); err == nil {
		t.Fatal("empty selection accepted")
	}
}

func TestCampaignMode(t *testing.T) {
	if err := run(options{campaign: true, seed: 7, shards: 1, parallel: 2, plan: "implant-persist"}); err != nil {
		t.Fatal(err)
	}
}
