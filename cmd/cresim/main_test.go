package main

import (
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestList(t *testing.T) {
	if err := run(options{list: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFleetSmoke(t *testing.T) {
	if err := run(options{fleet: 512, parallel: 2, seed: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTreeMode(t *testing.T) {
	if err := run(options{tree: "2:2", parallel: 2, seed: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTreeModeBadShape(t *testing.T) {
	for _, bad := range []string{"2", "2:4:8", "x:2", "2:y", "0:2", "1:1"} {
		if err := run(options{tree: bad, seed: 7}); err == nil {
			t.Errorf("-tree %q accepted", bad)
		}
	}
}

func TestRunSingleScenarioCRES(t *testing.T) {
	if err := run(options{scenario: "secure-probe", arch: "cres", seed: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleScenarioBaseline(t *testing.T) {
	if err := run(options{scenario: "secure-probe", arch: "baseline", seed: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScenarioListBothArchitectures(t *testing.T) {
	if err := run(options{scenario: "secure-probe, code-injection", arch: "both", seed: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBuiltinPlan(t *testing.T) {
	if err := run(options{plan: "network-takeover", arch: "cres", seed: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomPlanSyntax(t *testing.T) {
	if err := run(options{plan: "secure-probe@0,log-wipe@5ms*2", arch: "cres", seed: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownScenario(t *testing.T) {
	if err := run(options{scenario: "nope", arch: "cres", seed: 7}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestUnknownPlan(t *testing.T) {
	if err := run(options{plan: "nope", arch: "cres", seed: 7}); err == nil {
		t.Fatal("unknown plan accepted")
	}
}

func TestUnknownArchitecture(t *testing.T) {
	if err := run(options{scenario: "secure-probe", arch: "riscv", seed: 7}); err == nil {
		t.Fatal("unknown architecture accepted")
	}
}

func TestNothingSelected(t *testing.T) {
	if err := run(options{arch: "cres", seed: 7}); err == nil {
		t.Fatal("empty selection accepted")
	}
}

// TestServeMode drives the cresd alias end to end: serve on :0 with a
// store, answer an appraisal, drain via /quit.
func TestServeMode(t *testing.T) {
	o := options{serve: true, listen: "127.0.0.1:0",
		storeDir: filepath.Join(t.TempDir(), "results"), parallel: 2, seed: 7}
	started := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- runServe(o, started) }()
	base := "http://" + (<-started).String()

	resp, err := http.Get(base + "/appraise?size=64&seed=3")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"schema"`) {
		t.Fatalf("GET /appraise: %d: %s", resp.StatusCode, body)
	}
	if resp, err = http.Post(base+"/quit", "application/json", nil); err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("serve mode exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("/quit did not drain the server")
	}
}

// TestServeModeRejectsBadListen pins that serve-mode flag errors stop
// startup, matching the cresd contract.
func TestServeModeRejectsBadListen(t *testing.T) {
	if err := run(options{serve: true, listen: "definitely:not:an:address", storeDir: ""}); err == nil {
		t.Fatal("bad -listen accepted")
	}
}

func TestCampaignMode(t *testing.T) {
	if err := run(options{campaign: true, seed: 7, shards: 1, parallel: 2, plan: "implant-persist"}); err != nil {
		t.Fatal(err)
	}
}
