package main

import "testing"

func TestList(t *testing.T) {
	if err := run(true, "", false, "cres", 7); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleScenarioCRES(t *testing.T) {
	if err := run(false, "secure-probe", false, "cres", 7); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleScenarioBaseline(t *testing.T) {
	if err := run(false, "secure-probe", false, "baseline", 7); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownScenario(t *testing.T) {
	if err := run(false, "nope", false, "cres", 7); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestUnknownArchitecture(t *testing.T) {
	if err := run(false, "secure-probe", false, "riscv", 7); err == nil {
		t.Fatal("unknown architecture accepted")
	}
}
