// Command cresim runs attack scenarios and staged attack plans against
// a simulated device and prints the outcome: what the monitors saw,
// what the security manager did, how the services fared, and the
// forensic reconstruction.
//
// The -campaign mode runs the full scenario campaign instead: every
// attack scenario and staged plan × {cres, baseline} × -shards derived
// seeds, fanned across -parallel workers, printed as one outcome
// matrix.
//
// Usage:
//
//	cresim -list
//	cresim -scenario code-injection [-arch cres|baseline|both] [-seed 7]
//	cresim -scenario secure-probe,bus-flood -arch both
//	cresim -plan network-takeover
//	cresim -plan "secure-probe@0,log-wipe@10ms*3"
//	cresim -all
//	cresim -campaign [-plan implant-persist] [-shards 3] [-parallel N] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cres"
	"cres/internal/attack"
	"cres/internal/harness"
	"cres/internal/scenario"
)

// options collects the CLI flags.
type options struct {
	list     bool
	scenario string
	plan     string
	all      bool
	arch     string
	seed     int64
	campaign bool
	shards   int
	parallel int
}

func main() {
	var o options
	flag.BoolVar(&o.list, "list", false, "list available attack scenarios and built-in plans")
	flag.StringVar(&o.scenario, "scenario", "", "comma-separated scenarios to run (see -list)")
	flag.StringVar(&o.plan, "plan", "", `staged plans: built-in names ("implant-persist"), "scenario@delay,..." syntax, or "none" (campaign mode)`)
	flag.BoolVar(&o.all, "all", false, "run every scenario")
	flag.StringVar(&o.arch, "arch", "cres", "architecture: cres, baseline or both")
	flag.Int64Var(&o.seed, "seed", 7, "simulation seed (campaign: root seed)")
	flag.BoolVar(&o.campaign, "campaign", false, "run the scenario campaign matrix")
	flag.IntVar(&o.shards, "shards", 3, "campaign seed replicas per attack × architecture cell")
	flag.IntVar(&o.parallel, "parallel", 0, "campaign worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "cresim:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.list {
		for _, sc := range attack.All() {
			fmt.Printf("%-22s %s\n", sc.Name(), sc.Description())
		}
		fmt.Println()
		for _, p := range scenario.BuiltinPlans() {
			fmt.Printf("%-22s [plan] %s\n", p.Name, p.Description)
		}
		return nil
	}

	if o.campaign {
		plans, err := scenario.ParsePlans(o.plan)
		if err != nil {
			return err
		}
		res, err := cres.RunE12Campaign(cres.CampaignConfig{
			RootSeed: o.seed,
			Seeds:    o.shards,
			Plans:    plans,
		}, cres.WithRunPool(harness.NewPool(o.parallel)))
		if err != nil {
			return err
		}
		fmt.Println(res.Table.Render())
		return nil
	}

	var archs []cres.Architecture
	if o.arch == "both" {
		archs = []cres.Architecture{cres.ArchCRES, cres.ArchBaseline}
	} else {
		arch, err := cres.ParseArchitecture(o.arch)
		if err != nil {
			return fmt.Errorf("unknown architecture %q (want cres, baseline or both)", o.arch)
		}
		archs = []cres.Architecture{arch}
	}

	attacks, err := selectAttacks(o)
	if err != nil {
		return err
	}
	for _, sc := range attacks {
		for _, arch := range archs {
			if err := runOne(sc, arch, o.seed); err != nil {
				return fmt.Errorf("%s: %w", sc.Name(), err)
			}
		}
	}
	return nil
}

// selectAttacks resolves the -all/-scenario/-plan flags into launchable
// attacks, scenarios first.
func selectAttacks(o options) ([]attack.Scenario, error) {
	var attacks []attack.Scenario
	if o.all {
		attacks = attack.All()
	} else {
		for _, name := range strings.Split(o.scenario, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			sc, ok := attack.Get(name)
			if !ok {
				return nil, fmt.Errorf("no scenario %q (use -list)", name)
			}
			attacks = append(attacks, sc)
		}
	}
	if o.plan != "" {
		plans, err := scenario.ParsePlans(o.plan)
		if err != nil {
			return nil, err
		}
		for _, p := range plans {
			cp, err := p.Compile()
			if err != nil {
				return nil, err
			}
			attacks = append(attacks, cp.Scenario())
		}
	}
	if len(attacks) == 0 {
		return nil, fmt.Errorf("nothing to run: give -scenario, -plan or -all (use -list)")
	}
	return attacks, nil
}

func runOne(sc attack.Scenario, arch cres.Architecture, seed int64) error {
	fmt.Printf("=== scenario %s on %s architecture ===\n", sc.Name(), arch)
	fmt.Printf("    %s\n\n", sc.Description())

	tb, err := cres.NewAttackTestbed(arch, seed)
	if err != nil {
		return err
	}
	dev := tb.Device()
	if err := tb.Warm(15 * time.Millisecond); err != nil {
		return err
	}
	attackStart := dev.Now()
	if err := sc.Launch(tb.AttackTarget()); err != nil {
		return err
	}
	window := 30 * time.Millisecond
	if staged, ok := sc.(attack.Staged); ok {
		// A plan's later stages must run inside the observation window.
		window += staged.Horizon()
	}
	dev.RunFor(window)

	if dev.SSM != nil {
		fmt.Printf("health state: %s\n", dev.SSM.State())
		fmt.Printf("alerts handled: %d, responses fired: %d\n", dev.SSM.AlertsHandled(), dev.SSM.ResponsesFired())
		crit, up, total := dev.Degrader.UpCount()
		fmt.Printf("services: %d/%d up (critical up: %d), isolated: %v\n\n", up, total, crit, dev.Responder.Isolated())
		rep := dev.ForensicReport(attackStart, dev.Now())
		fmt.Println(rep.Render())
	} else {
		fmt.Printf("baseline architecture: no monitors, no security manager\n")
		fmt.Printf("plain log records: %d (boot only — the attack left no trace)\n\n", dev.PlainLog.Len())
	}
	return nil
}
