// Command cresim runs attack scenarios and staged attack plans against
// a simulated device and prints the outcome: what the monitors saw,
// what the security manager did, how the services fared, and the
// forensic reconstruction.
//
// The -campaign mode runs the full scenario campaign instead: every
// attack scenario and staged plan × {cres, baseline} × -shards derived
// seeds, fanned across -parallel workers, printed as one outcome
// matrix.
//
// The -fleet mode is the streaming fleet smoke: attest an N-device
// fleet on the fleet engine and print the merged summary plus the
// sampled anomalous devices.
//
// The -tree mode attests a fleet through the hierarchical verifier
// tree: verifier shards are the leaves of a depth × fanout hierarchy,
// every interior node batch-verifies and re-signs its children's
// summaries, and the mode then re-runs the tree with one mid-tier
// verifier forging its merged summary to show the detection and
// attribution on the way up.
//
// The -topology mode runs a worm over a wired fleet — one E13 cell,
// interactively: patient zero is compromised, the worm's payload
// schedules itself on each neighbour after -dwell, and the fleet
// answers according to -mode (baseline, cres-isolated or cres-coop).
// The full event timeline is printed: infections, gossip-triggered
// link quarantines, and the propagation attempts they blocked.
//
// Usage:
//
//	cresim -list
//	cresim -scenario code-injection [-arch cres|baseline|both] [-seed 7]
//	cresim -scenario secure-probe,bus-flood -arch both
//	cresim -plan network-takeover
//	cresim -plan "secure-probe@0,log-wipe@10ms*3"
//	cresim -all
//	cresim -campaign [-plan implant-persist] [-shards 3] [-parallel N] [-seed 7]
//	cresim -fleet 4096 [-parallel N] [-seed 7]
//	cresim -tree 2:4 [-parallel N] [-seed 7]
//	cresim -topology ring:10 [-dwell 2ms] [-mode cres-coop] [-worm secure-probe]
//	cresim -topology ring:10 -faults high
//	cresim -topology star:10 -faults high -recover
//	cresim -serve [-listen 127.0.0.1:8377] [-store results]
//
// The -serve mode is an alias of cmd/cresd: it starts the resident
// attestation service on -listen, persisting results to -store, and
// serves until SIGINT/SIGTERM or a POST /quit drains it. See cresd
// for the endpoint surface.
//
// The -faults flag layers a named fault campaign (see cres.
// DefaultFaultLevels: none, low, high) onto the topology mode's fabric:
// seeded message drop/duplication/reordering, device crash-and-reboot
// churn, and verifier outages. Adding -recover closes the loop: the
// cell is run through experiment E14's contain and recover modes and
// the comparison table is printed — quarantined devices re-attest
// through a fleet verifier over the faulty fabric, links are restored,
// and time-to-full-service is measured against the containment-only
// baseline.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cres"
	"cres/internal/attack"
	"cres/internal/fleet"
	"cres/internal/harness"
	"cres/internal/scenario"
	"cres/internal/service"
	"cres/internal/store"
)

// options collects the CLI flags.
type options struct {
	list     bool
	scenario string
	plan     string
	all      bool
	arch     string
	seed     int64
	campaign bool
	fleet    int
	tree     string
	shards   int
	parallel int
	topology string
	dwell    time.Duration
	mode     string
	worm     string
	faults   string
	// recoverLoop is the -recover flag ("recover" itself would shadow
	// the builtin in any local rebinding).
	recoverLoop bool
	serve       bool
	listen      string
	storeDir    string
}

func main() {
	var o options
	flag.BoolVar(&o.list, "list", false, "list available attack scenarios and built-in plans")
	flag.StringVar(&o.scenario, "scenario", "", "comma-separated scenarios to run (see -list)")
	flag.StringVar(&o.plan, "plan", "", `staged plans: built-in names ("implant-persist"), "scenario@delay,..." syntax, or "none" (campaign mode)`)
	flag.BoolVar(&o.all, "all", false, "run every scenario")
	flag.StringVar(&o.arch, "arch", "cres", "architecture: cres, baseline or both")
	flag.Int64Var(&o.seed, "seed", 7, "simulation seed (campaign: root seed)")
	flag.BoolVar(&o.campaign, "campaign", false, "run the scenario campaign matrix")
	flag.IntVar(&o.fleet, "fleet", 0, "attest an N-device fleet on the streaming engine (smoke mode)")
	flag.StringVar(&o.tree, "tree", "", `attest through a verifier hierarchy: "depth:fanout" (e.g. 2:4)`)
	flag.IntVar(&o.shards, "shards", 3, "campaign seed replicas per attack × architecture cell")
	flag.IntVar(&o.parallel, "parallel", 0, "campaign worker pool size (0 = GOMAXPROCS)")
	flag.StringVar(&o.topology, "topology", "", `worm-over-fleet mode: "kind[:size[:fanout]]" (ring, star, mesh, random)`)
	flag.DurationVar(&o.dwell, "dwell", 2*time.Millisecond, "worm infection-to-propagation delay (topology mode)")
	flag.StringVar(&o.mode, "mode", "cres-coop", "fleet response mode: baseline, cres-isolated or cres-coop (topology mode)")
	flag.StringVar(&o.worm, "worm", "secure-probe", "worm payload scenario (topology mode; see -list)")
	flag.StringVar(&o.faults, "faults", "none", "fault campaign on the fabric: none, low or high (topology mode)")
	flag.BoolVar(&o.recoverLoop, "recover", false, "run the cell through E14's contain vs recover modes and print the comparison (topology mode)")
	flag.BoolVar(&o.serve, "serve", false, "start the resident attestation service (alias of cmd/cresd)")
	flag.StringVar(&o.listen, "listen", "127.0.0.1:8377", "TCP address the resident service listens on (serve mode)")
	flag.StringVar(&o.storeDir, "store", "results", "resident service result store directory; empty disables persistence (serve mode)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "cresim:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.list {
		for _, sc := range attack.All() {
			fmt.Printf("%-22s %s\n", sc.Name(), sc.Description())
		}
		fmt.Println()
		for _, p := range scenario.BuiltinPlans() {
			fmt.Printf("%-22s [plan] %s\n", p.Name, p.Description)
		}
		return nil
	}

	if o.serve {
		return runServe(o, nil)
	}

	if o.fleet > 0 {
		return runFleet(o)
	}

	if o.tree != "" {
		return runTree(o)
	}

	if o.topology != "" {
		return runSwarm(o)
	}

	if o.campaign {
		plans, err := scenario.ParsePlans(o.plan)
		if err != nil {
			return err
		}
		res, err := cres.RunE12Campaign(cres.CampaignConfig{
			RootSeed: o.seed,
			Seeds:    o.shards,
			Plans:    plans,
		}, cres.WithRunPool(harness.NewPool(o.parallel)))
		if err != nil {
			return err
		}
		fmt.Println(res.Table.Render())
		return nil
	}

	var archs []cres.Architecture
	if o.arch == "both" {
		archs = []cres.Architecture{cres.ArchCRES, cres.ArchBaseline}
	} else {
		arch, err := cres.ParseArchitecture(o.arch)
		if err != nil {
			return fmt.Errorf("unknown architecture %q (want cres, baseline or both)", o.arch)
		}
		archs = []cres.Architecture{arch}
	}

	attacks, err := selectAttacks(o)
	if err != nil {
		return err
	}
	for _, sc := range attacks {
		for _, arch := range archs {
			if err := runOne(sc, arch, o.seed); err != nil {
				return fmt.Errorf("%s: %w", sc.Name(), err)
			}
		}
	}
	return nil
}

// selectAttacks resolves the -all/-scenario/-plan flags into launchable
// attacks, scenarios first.
func selectAttacks(o options) ([]attack.Scenario, error) {
	var attacks []attack.Scenario
	if o.all {
		attacks = attack.All()
	} else {
		for _, name := range strings.Split(o.scenario, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			sc, ok := attack.Get(name)
			if !ok {
				return nil, fmt.Errorf("no scenario %q (use -list)", name)
			}
			attacks = append(attacks, sc)
		}
	}
	if o.plan != "" {
		plans, err := scenario.ParsePlans(o.plan)
		if err != nil {
			return nil, err
		}
		for _, p := range plans {
			cp, err := p.Compile()
			if err != nil {
				return nil, err
			}
			attacks = append(attacks, cp.Scenario())
		}
	}
	if len(attacks) == 0 {
		return nil, fmt.Errorf("nothing to run: give -scenario, -plan or -all (use -list)")
	}
	return attacks, nil
}

// parseTopology parses the -topology value: "kind", "kind:size" or
// "kind:size:fanout".
func parseTopology(s string) (scenario.TopologySpec, error) {
	parts := strings.Split(s, ":")
	spec := scenario.TopologySpec{Kind: strings.TrimSpace(parts[0]), Size: 10}
	var err error
	if len(parts) > 1 {
		if spec.Size, err = strconv.Atoi(strings.TrimSpace(parts[1])); err != nil {
			return spec, fmt.Errorf("-topology size %q: %v", parts[1], err)
		}
	}
	if len(parts) > 2 {
		if spec.Fanout, err = strconv.Atoi(strings.TrimSpace(parts[2])); err != nil {
			return spec, fmt.Errorf("-topology fanout %q: %v", parts[2], err)
		}
	}
	if len(parts) > 3 {
		return spec, fmt.Errorf("-topology %q: want kind[:size[:fanout]]", s)
	}
	return spec, nil
}

// oneOf rejects a flag value that is not in the valid set, naming
// every valid value — no flag falls back to a default silently.
func oneOf(flagName, val string, valid []string) error {
	for _, v := range valid {
		if v == val {
			return nil
		}
	}
	return fmt.Errorf("%s: unknown value %q (valid: %s)", flagName, val, strings.Join(valid, ", "))
}

// attackNames lists the registered attack scenario names, for the
// -worm usage error.
func attackNames() []string {
	all := attack.All()
	names := make([]string, len(all))
	for i, sc := range all {
		names[i] = sc.Name()
	}
	return names
}

// faultLevel resolves the -faults flag against the named E14 fault
// levels.
func faultLevel(name string) (cres.FaultLevel, error) {
	levels := cres.DefaultFaultLevels()
	names := make([]string, len(levels))
	for i, lv := range levels {
		if lv.Name == name {
			return lv, nil
		}
		names[i] = lv.Name
	}
	return cres.FaultLevel{}, fmt.Errorf("-faults: unknown value %q (valid: %s)", name, strings.Join(names, ", "))
}

// runSwarm is the worm-over-fleet mode: one topology, one dwell, one
// response mode, with the full event timeline printed — the
// interactive view of one E13 cell. With -faults the fabric is lossy;
// with -recover the cell becomes an E14 row instead.
func runSwarm(o options) error {
	spec, err := parseTopology(o.topology)
	if err != nil {
		return err
	}
	// Validate every topology-mode flag up front so a typo surfaces as
	// a usage error listing the valid names, never a silent default.
	if err := oneOf("-topology", spec.Kind, scenario.TopologyKinds()); err != nil {
		return err
	}
	if err := oneOf("-mode", o.mode, cres.SwarmModes()); err != nil {
		return err
	}
	if err := oneOf("-worm", o.worm, attackNames()); err != nil {
		return err
	}
	level, err := faultLevel(o.faults)
	if err != nil {
		return err
	}
	spec.Seed = o.seed
	if o.recoverLoop {
		return runRecovery(o, spec, level)
	}
	out, err := cres.RunSwarmUnderFaults(spec, o.dwell, o.mode, o.worm, o.seed, level.Spec)
	if err != nil {
		return err
	}
	c := out.Cell
	fmt.Printf("=== %q worm over %s fleet (%d devices, dwell %v, mode %s, faults %s) ===\n\n",
		o.worm, c.Topology, spec.Size, c.Dwell, c.Mode, level.Name)
	for _, ev := range out.Events {
		fmt.Printf("  %12v  %-10s %s\n", ev.At, ev.Kind, ev.Detail)
	}
	fmt.Printf("\ninfected: %d/%d (saved %d)  blocked hops: %d  links cut: %d\n",
		c.Infected, spec.Size, c.Saved, c.Blocked, c.LinksCut)
	fmt.Printf("containment after %v; %d devices informed by gossip\n", c.Containment, c.Informed)
	return nil
}

// runRecovery closes the loop on one cell: the chosen wiring and fault
// level run through experiment E14's contain and recover modes, and
// the comparison row — devices saved, retries, gossip delivered versus
// dropped, time to full service — is printed.
func runRecovery(o options, spec scenario.TopologySpec, level cres.FaultLevel) error {
	res, err := cres.RunE14FaultRecovery(cres.E14Config{
		RootSeed:   o.seed,
		Topologies: []scenario.TopologySpec{spec},
		Dwell:      o.dwell,
		Levels:     []cres.FaultLevel{level},
		Payload:    o.worm,
	}, cres.WithRunPool(harness.NewPool(o.parallel)))
	if err != nil {
		return err
	}
	fmt.Printf("=== closed-loop recovery: %q worm over %s fleet (%d devices, faults %s) ===\n\n",
		o.worm, spec.Kind, spec.Size, level.Name)
	fmt.Println(res.Table.Render())
	return nil
}

// parseTree parses the -tree value: "depth:fanout".
func parseTree(s string) (depth, fanout int, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-tree %q: want depth:fanout (e.g. 2:4)", s)
	}
	if depth, err = strconv.Atoi(strings.TrimSpace(parts[0])); err != nil {
		return 0, 0, fmt.Errorf("-tree depth %q: %v", parts[0], err)
	}
	if fanout, err = strconv.Atoi(strings.TrimSpace(parts[1])); err != nil {
		return 0, 0, fmt.Errorf("-tree fanout %q: %v", parts[1], err)
	}
	return depth, fanout, nil
}

// runTree is the hierarchical-verifier mode: attest the fleet through
// a depth × fanout verifier tree, print the operator-verified summary
// and the hierarchy's costs, then re-run with one mid-tier verifier
// forging its merged summary and print the detection.
func runTree(o options) error {
	depth, fanout, err := parseTree(o.tree)
	if err != nil {
		return err
	}
	ct, err := cres.E15TreeSpec(cres.E15Shape{Depth: depth, Fanout: fanout}).Compile()
	if err != nil {
		return err
	}
	tr, err := ct.Tree(o.seed)
	if err != nil {
		return err
	}
	pool := harness.NewPool(o.parallel)
	res, err := tr.Run(pool)
	if err != nil {
		return err
	}
	sum := res.Summary
	fmt.Printf("=== hierarchical attestation: depth %d, fanout %d — %d verifier leaves over %d devices ===\n\n",
		depth, fanout, tr.Leaves(), sum.Devices)
	fmt.Printf("tiers (leaves first): %v\n", tr.Tiers())
	fmt.Printf("devices: %d  tampered: %d  caught: %d  false alarms: %d\n",
		sum.Devices, sum.Tampered, sum.Caught, sum.FalseAlarms)
	fmt.Printf("completion: %v (virtual; flat shards finished at %v)\n", res.Completion, sum.Completion)
	fmt.Printf("signature checks: %d  max records held by one checker: %d\n\n", res.SigChecks, res.MaxHeld)

	// The demo forgery: the last tier-1 verifier signs a summary with
	// every compromise scrubbed.
	liar := fleet.NodeID{Tier: 1, Index: tr.Tiers()[1] - 1}
	forged, err := tr.RunForged(pool, fleet.Forge{Node: liar, Mode: fleet.ForgeSummary})
	if err != nil {
		return err
	}
	fmt.Printf("forgery demo: %s re-signs its merged summary with all %d caught compromises hidden\n", liar, sum.Caught)
	for _, det := range forged.Detections {
		fmt.Printf("  detected: %s caught by %s (%s) at %v — %v after the lie was signed\n",
			det.Liar, det.By, det.Kind, det.At, det.Lag)
	}
	if len(forged.Detections) == 0 {
		fmt.Println("  NOT DETECTED — hierarchy invariant broken")
	}
	return nil
}

// runFleet is the streaming-fleet smoke: a mixed fleet (three quarters
// sensors, one quarter gateways, each shape with its own tamper rate)
// attested end to end on the fleet engine, with the anomaly sample
// resolved back to shares through the engine's per-index functions.
func runFleet(o options) error {
	spec := scenario.FleetSpec{
		Name: "smoke",
		Size: o.fleet,
		Shares: []scenario.FleetShare{
			{Device: scenario.DeviceSpec{Name: "sensor"}, Fraction: 0.75, TamperRate: 0.02},
			{Device: scenario.DeviceSpec{Name: "gateway", FirmwareVersion: 2, FirmwarePayload: []byte("gateway firmware")}, Fraction: 0.25, TamperRate: 0.005},
		},
	}
	cf, err := spec.Compile()
	if err != nil {
		return err
	}
	eng, err := cf.Engine(o.seed)
	if err != nil {
		return err
	}
	fmt.Printf("=== streaming fleet smoke: %d devices, %d shards, batches of %d ===\n\n",
		o.fleet, eng.NumShards(), eng.Config().BatchSize)

	sum, err := eng.RunParallel(harness.NewPool(o.parallel))
	if err != nil {
		return err
	}

	fmt.Printf("devices: %d  tampered: %d  caught: %d  false alarms: %d\n",
		sum.Devices, sum.Tampered, sum.Caught, sum.FalseAlarms)
	fmt.Printf("completion: %v (virtual)  mean latency: %v  p50: %v  p99: %v  max: %v\n\n",
		sum.Completion, sum.MeanLatency(), sum.Quantile(0.5), sum.Quantile(0.99), sum.MaxLatency)
	if len(sum.Sample) == 0 {
		fmt.Println("no anomalous devices sampled")
		return nil
	}
	// Anomalous = every non-healthy outcome: caught and missed tampered
	// devices plus false alarms.
	fmt.Printf("anomaly sample (%d of %d anomalous):\n", len(sum.Sample), sum.Tampered+sum.FalseAlarms)
	for _, a := range sum.Sample {
		share := cf.Config.Shares[eng.ShareOf(a.Index)]
		fmt.Printf("  device %-8d %-8s share=%s latency=%v\n",
			a.Index, fleet.ReasonString(a.Reason), share.Label, a.Latency)
	}
	return nil
}

// runServe is the resident-service alias: the same engines cresim
// drives in batch, kept warm behind cresd's HTTP surface. Flags are
// validated (and the store opened) before the listener; SIGINT,
// SIGTERM or a POST /quit drains gracefully. The bound address is
// sent on started (when non-nil) once the listener is open, for tests
// serving on :0.
func runServe(o options, started chan<- net.Addr) error {
	var st *store.Store
	if o.storeDir != "" {
		var err error
		if st, err = store.Open(o.storeDir); err != nil {
			return fmt.Errorf("-store: %w", err)
		}
		defer st.Close()
	}
	srv, err := service.New(service.Config{
		Store:       st,
		Parallel:    o.parallel,
		DefaultSeed: o.seed,
	})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", o.listen)
	if err != nil {
		return fmt.Errorf("-listen: %w", err)
	}
	fmt.Printf("cresim: resident service on http://%s (alias of cresd)\n", l.Addr())
	if started != nil {
		started <- l.Addr()
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		if _, ok := <-sig; !ok {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	err = srv.Serve(l)
	// Unhook and close the channel so the drain goroutine exits when
	// the server stopped for another reason (a /quit request).
	signal.Stop(sig)
	close(sig)
	return err
}

func runOne(sc attack.Scenario, arch cres.Architecture, seed int64) error {
	fmt.Printf("=== scenario %s on %s architecture ===\n", sc.Name(), arch)
	fmt.Printf("    %s\n\n", sc.Description())

	tb, err := cres.NewAttackTestbed(arch, seed)
	if err != nil {
		return err
	}
	dev := tb.Device()
	if err := tb.Warm(15 * time.Millisecond); err != nil {
		return err
	}
	attackStart := dev.Now()
	if err := sc.Launch(tb.AttackTarget()); err != nil {
		return err
	}
	window := 30 * time.Millisecond
	if staged, ok := sc.(attack.Staged); ok {
		// A plan's later stages must run inside the observation window.
		window += staged.Horizon()
	}
	dev.RunFor(window)

	if dev.SSM != nil {
		fmt.Printf("health state: %s\n", dev.SSM.State())
		fmt.Printf("alerts handled: %d, responses fired: %d\n", dev.SSM.AlertsHandled(), dev.SSM.ResponsesFired())
		crit, up, total := dev.Degrader.UpCount()
		fmt.Printf("services: %d/%d up (critical up: %d), isolated: %v\n\n", up, total, crit, dev.Responder.Isolated())
		rep := dev.ForensicReport(attackStart, dev.Now())
		fmt.Println(rep.Render())
	} else {
		fmt.Printf("baseline architecture: no monitors, no security manager\n")
		fmt.Printf("plain log records: %d (boot only — the attack left no trace)\n\n", dev.PlainLog.Len())
	}
	return nil
}
