// Command cresim runs an attack scenario against a simulated device and
// prints the outcome: what the monitors saw, what the security manager
// did, how the services fared, and the forensic reconstruction.
//
// Usage:
//
//	cresim -list
//	cresim -scenario code-injection [-arch cres|baseline] [-seed 7]
//	cresim -all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cres"
	"cres/internal/attack"
)

func main() {
	list := flag.Bool("list", false, "list available attack scenarios")
	name := flag.String("scenario", "", "scenario to run (see -list)")
	all := flag.Bool("all", false, "run every scenario")
	arch := flag.String("arch", "cres", "architecture: cres or baseline")
	seed := flag.Int64("seed", 7, "simulation seed")
	flag.Parse()

	if err := run(*list, *name, *all, *arch, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "cresim:", err)
		os.Exit(1)
	}
}

func run(list bool, name string, all bool, archName string, seed int64) error {
	if list {
		for _, sc := range attack.Suite() {
			fmt.Printf("%-22s %s\n", sc.Name(), sc.Description())
		}
		return nil
	}

	var arch cres.Architecture
	switch archName {
	case "cres":
		arch = cres.ArchCRES
	case "baseline":
		arch = cres.ArchBaseline
	default:
		return fmt.Errorf("unknown architecture %q", archName)
	}

	var scenarios []attack.Scenario
	for _, sc := range attack.Suite() {
		if all || sc.Name() == name {
			scenarios = append(scenarios, sc)
		}
	}
	if len(scenarios) == 0 {
		return fmt.Errorf("no scenario %q (use -list)", name)
	}

	for _, sc := range scenarios {
		if err := runOne(sc, arch, seed); err != nil {
			return fmt.Errorf("%s: %w", sc.Name(), err)
		}
	}
	return nil
}

func runOne(sc attack.Scenario, arch cres.Architecture, seed int64) error {
	fmt.Printf("=== scenario %s on %s architecture ===\n", sc.Name(), arch)
	fmt.Printf("    %s\n\n", sc.Description())

	tb, err := cres.NewAttackTestbed(arch, seed)
	if err != nil {
		return err
	}
	dev := tb.Device()
	if err := tb.Warm(15 * time.Millisecond); err != nil {
		return err
	}
	attackStart := dev.Now()
	if err := sc.Launch(tb.AttackTarget()); err != nil {
		return err
	}
	dev.RunFor(30 * time.Millisecond)

	if dev.SSM != nil {
		fmt.Printf("health state: %s\n", dev.SSM.State())
		fmt.Printf("alerts handled: %d, responses fired: %d\n", dev.SSM.AlertsHandled(), dev.SSM.ResponsesFired())
		crit, up, total := dev.Degrader.UpCount()
		fmt.Printf("services: %d/%d up (critical up: %d), isolated: %v\n\n", up, total, crit, dev.Responder.Isolated())
		rep := dev.ForensicReport(attackStart, dev.Now())
		fmt.Println(rep.Render())
	} else {
		fmt.Printf("baseline architecture: no monitors, no security manager\n")
		fmt.Printf("plain log records: %d (boot only — the attack left no trace)\n\n", dev.PlainLog.Len())
	}
	return nil
}
