// Command cresim runs an attack scenario against a simulated device and
// prints the outcome: what the monitors saw, what the security manager
// did, how the services fared, and the forensic reconstruction.
//
// The -campaign mode runs the full scenario campaign instead: every
// attack scenario × {cres, baseline} × -shards derived seeds, fanned
// across -parallel workers, printed as one outcome matrix.
//
// Usage:
//
//	cresim -list
//	cresim -scenario code-injection [-arch cres|baseline] [-seed 7]
//	cresim -all
//	cresim -campaign [-shards 3] [-parallel N] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cres"
	"cres/internal/attack"
	"cres/internal/harness"
)

// options collects the CLI flags.
type options struct {
	list     bool
	scenario string
	all      bool
	arch     string
	seed     int64
	campaign bool
	shards   int
	parallel int
}

func main() {
	var o options
	flag.BoolVar(&o.list, "list", false, "list available attack scenarios")
	flag.StringVar(&o.scenario, "scenario", "", "scenario to run (see -list)")
	flag.BoolVar(&o.all, "all", false, "run every scenario")
	flag.StringVar(&o.arch, "arch", "cres", "architecture: cres or baseline")
	flag.Int64Var(&o.seed, "seed", 7, "simulation seed (campaign: root seed)")
	flag.BoolVar(&o.campaign, "campaign", false, "run the scenario campaign matrix")
	flag.IntVar(&o.shards, "shards", 3, "campaign seed replicas per scenario × architecture cell")
	flag.IntVar(&o.parallel, "parallel", 0, "campaign worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "cresim:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.list {
		for _, sc := range attack.Suite() {
			fmt.Printf("%-22s %s\n", sc.Name(), sc.Description())
		}
		return nil
	}

	if o.campaign {
		res, err := cres.RunE12Campaign(cres.CampaignConfig{
			RootSeed: o.seed,
			Seeds:    o.shards,
		}, cres.WithRunPool(harness.NewPool(o.parallel)))
		if err != nil {
			return err
		}
		fmt.Println(res.Table.Render())
		return nil
	}

	var arch cres.Architecture
	switch o.arch {
	case "cres":
		arch = cres.ArchCRES
	case "baseline":
		arch = cres.ArchBaseline
	default:
		return fmt.Errorf("unknown architecture %q", o.arch)
	}

	var scenarios []attack.Scenario
	for _, sc := range attack.Suite() {
		if o.all || sc.Name() == o.scenario {
			scenarios = append(scenarios, sc)
		}
	}
	if len(scenarios) == 0 {
		return fmt.Errorf("no scenario %q (use -list)", o.scenario)
	}

	for _, sc := range scenarios {
		if err := runOne(sc, arch, o.seed); err != nil {
			return fmt.Errorf("%s: %w", sc.Name(), err)
		}
	}
	return nil
}

func runOne(sc attack.Scenario, arch cres.Architecture, seed int64) error {
	fmt.Printf("=== scenario %s on %s architecture ===\n", sc.Name(), arch)
	fmt.Printf("    %s\n\n", sc.Description())

	tb, err := cres.NewAttackTestbed(arch, seed)
	if err != nil {
		return err
	}
	dev := tb.Device()
	if err := tb.Warm(15 * time.Millisecond); err != nil {
		return err
	}
	attackStart := dev.Now()
	if err := sc.Launch(tb.AttackTarget()); err != nil {
		return err
	}
	dev.RunFor(30 * time.Millisecond)

	if dev.SSM != nil {
		fmt.Printf("health state: %s\n", dev.SSM.State())
		fmt.Printf("alerts handled: %d, responses fired: %d\n", dev.SSM.AlertsHandled(), dev.SSM.ResponsesFired())
		crit, up, total := dev.Degrader.UpCount()
		fmt.Printf("services: %d/%d up (critical up: %d), isolated: %v\n\n", up, total, crit, dev.Responder.Isolated())
		rep := dev.ForensicReport(attackStart, dev.Now())
		fmt.Println(rep.Render())
	} else {
		fmt.Printf("baseline architecture: no monitors, no security manager\n")
		fmt.Printf("plain log records: %d (boot only — the attack left no trace)\n\n", dev.PlainLog.Len())
	}
	return nil
}
