package cres

import (
	"strings"
	"testing"
	"time"
)

// These tests run the full experiment suite and assert the paper-shaped
// outcomes: who wins, by roughly what factor, and where the qualitative
// crossovers fall.

func TestE1TableIReproducesGap(t *testing.T) {
	res := RunE1TableI()
	if res.Requirements < 15 {
		t.Fatalf("requirements = %d", res.Requirements)
	}
	if len(res.Gaps) != 2 {
		t.Fatalf("gaps = %v", res.Gaps)
	}
	out := res.Table.Render()
	if !strings.Contains(out, "research gap") {
		t.Fatal("rendered table lacks gap marker")
	}
	if !strings.Contains(res.CoverageTable.Render(), "RESPOND") {
		t.Fatal("coverage table incomplete")
	}
}

func TestE2Figure1(t *testing.T) {
	res := RunE2Figure1()
	if len(res.Frameworks) != 3 {
		t.Fatal("frameworks")
	}
	if !strings.Contains(res.Rendered, "Identify") || !strings.Contains(res.Rendered, "NCSC") {
		t.Fatalf("rendered = %q", res.Rendered)
	}
	if res.Association.Len() != 5 {
		t.Fatal("association rows")
	}
}

func TestE3CRESDetectsEverythingBaselineNothing(t *testing.T) {
	res, err := RunE3DetectionMatrix(7)
	if err != nil {
		t.Fatal(err)
	}
	if res.CRESRate != 1.0 {
		t.Fatalf("CRES detection rate = %v; rows:\n%s", res.CRESRate, res.Table.Render())
	}
	if res.BaselineRate != 0.0 {
		t.Fatalf("baseline detection rate = %v", res.BaselineRate)
	}
	for _, r := range res.Rows {
		if !r.CRESDetected {
			t.Errorf("scenario %s undetected", r.Scenario)
		}
		if r.CRESDetected && r.DetectionLatency > 25*time.Millisecond {
			t.Errorf("scenario %s latency %v too high", r.Scenario, r.DetectionLatency)
		}
	}
}

func TestE4EvidenceContinuity(t *testing.T) {
	res, err := RunE4EvidenceContinuity(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatal("rows")
	}
	cresRow, baseRow := res.Rows[0], res.Rows[1]
	if cresRow.Continuity < 0.9 {
		t.Fatalf("cres continuity = %f", cresRow.Continuity)
	}
	if !cresRow.WipeDetected {
		t.Fatal("cres wipe not detected")
	}
	if baseRow.RecordsInWindow != 0 || baseRow.WipeDetected {
		t.Fatalf("baseline row = %+v", baseRow)
	}
}

func TestE5CriticalServiceSurvivesOnCRESOnly(t *testing.T) {
	res, err := RunE5GracefulDegradation(7, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalAvailability["cres"] < 0.99 {
		t.Fatalf("cres critical availability = %f", res.CriticalAvailability["cres"])
	}
	// Baseline spends ~500ms rebooting inside a 300ms window after a
	// 20ms notice delay: availability must be far below CRES.
	if res.CriticalAvailability["baseline"] > 0.5 {
		t.Fatalf("baseline critical availability = %f", res.CriticalAvailability["baseline"])
	}
	if res.TotalAvailability["cres"] <= res.TotalAvailability["baseline"] {
		t.Fatal("cres total availability should exceed baseline")
	}
}

func TestE6RecoveryOrdering(t *testing.T) {
	res, err := RunE6Recovery(7)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]E6Row{}
	for _, r := range res.Rows {
		byName[r.Strategy] = r
	}
	iso := byName["cres-isolate-restore"]
	rf := byName["cres-rollforward"]
	rb := byName["baseline-reboot"]
	if iso.CriticalOutage != 0 {
		t.Fatalf("isolate-restore outage = %v", iso.CriticalOutage)
	}
	if !iso.RemovesCompromise || !rf.RemovesCompromise {
		t.Fatal("cres strategies must remove compromise")
	}
	if rb.RemovesCompromise {
		t.Fatal("baseline reboot cannot remove compromise")
	}
	if rb.TimeToHealthy < rf.TimeToHealthy {
		t.Fatalf("baseline (%v) should be slower than roll-forward (%v)", rb.TimeToHealthy, rf.TimeToHealthy)
	}
	if iso.TimeToHealthy >= rb.TimeToHealthy {
		t.Fatal("targeted recovery should beat reboot")
	}
}

func TestE7OnlyHardenedChainSurvives(t *testing.T) {
	res, err := RunE7Rollback(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatal("rows")
	}
	hardened := res.Rows[0]
	if !hardened.Refused || hardened.AttackSucceed {
		t.Fatalf("hardened row = %+v", hardened)
	}
	// Anti-rollback is the deciding control: any config retaining it
	// (rows 0 and 2) refuses the genuine-but-old image; any config
	// without it (rows 1 and 3) boots the vulnerable v2.
	sigOnlyWeak := res.Rows[2]
	if !sigOnlyWeak.Refused || sigOnlyWeak.AttackSucceed {
		t.Fatalf("signature-weak-but-rollback-protected row = %+v", sigOnlyWeak)
	}
	for _, i := range []int{1, 3} {
		r := res.Rows[i]
		if !r.AttackSucceed {
			t.Errorf("config %q resisted downgrade: %+v", r.Config, r)
		}
		if r.BootedVersion != 2 {
			t.Errorf("config %q booted v%d", r.Config, r.BootedVersion)
		}
	}
}

func TestE8FleetCatchesAllTampered(t *testing.T) {
	res, err := RunE8FleetAttestation([]int{4, 64, 512}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		s := r.Summary
		if s.Devices != r.Devices {
			t.Errorf("n=%d summary covers %d devices", r.Devices, s.Devices)
		}
		if s.Caught != s.Tampered {
			t.Errorf("n=%d caught %d of %d tampered", r.Devices, s.Caught, s.Tampered)
		}
		if s.FalseAlarms != 0 {
			t.Errorf("n=%d false alarms %d", r.Devices, s.FalseAlarms)
		}
		if s.Completion <= 0 {
			t.Errorf("n=%d completion %v", r.Devices, s.Completion)
		}
		if len(s.Sample) == 0 || s.Sample[0].Reason != 1 /* caught */ {
			t.Errorf("n=%d anomaly sample %v", r.Devices, s.Sample)
		}
		// The histogram covers every device exactly once.
		hist := 0
		for _, n := range s.Hist {
			hist += n
		}
		if hist != s.Devices {
			t.Errorf("n=%d histogram counts %d of %d devices", r.Devices, hist, s.Devices)
		}
	}
	// Completion grows with fleet size in this streaming regime: more
	// devices mean more batches draining through the shard's verifier.
	if res.Rows[2].Summary.Completion < res.Rows[0].Summary.Completion {
		t.Fatal("completion should not shrink with fleet size")
	}
	if res.TotalDevices != 4+64+512 {
		t.Fatalf("total devices %d", res.TotalDevices)
	}
}

func TestE9OverheadOrdering(t *testing.T) {
	res, err := RunE9MonitorOverhead(50_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatal("rows")
	}
	// Monitoring costs something; the full configuration costs at least
	// as much as nothing at all. (Wall-clock noise makes strict
	// monotonicity flaky; assert the endpoints only.)
	if res.Rows[3].WallNsPerTx < res.Rows[0].WallNsPerTx*0.5 {
		t.Fatalf("full monitoring (%f) implausibly cheaper than none (%f)",
			res.Rows[3].WallNsPerTx, res.Rows[0].WallNsPerTx)
	}
	for _, r := range res.Rows {
		if r.Alerts != 0 {
			t.Errorf("healthy traffic raised %d alerts in %s", r.Alerts, r.Config)
		}
	}
}

func TestE10ChannelWorksAndIsDetectedUnpartitioned(t *testing.T) {
	res, err := RunE10CovertChannel(7)
	if err != nil {
		t.Fatal(err)
	}
	var unpart, part []E10Row
	for _, r := range res.Rows {
		if r.Partitioned {
			part = append(part, r)
		} else {
			unpart = append(unpart, r)
		}
	}
	for _, r := range unpart {
		acc := float64(r.BitsCorrect) / float64(r.BitsSent)
		if acc < 0.95 {
			t.Errorf("period %dµs: accuracy %f too low for working channel", r.PeriodUS, acc)
		}
		if !r.Detected {
			t.Errorf("period %dµs: channel undetected", r.PeriodUS)
		}
	}
	// Faster channel -> higher bandwidth.
	if unpart[0].BandwidthBps <= unpart[len(unpart)-1].BandwidthBps {
		t.Fatal("bandwidth should fall with longer bit periods")
	}
	// Partitioning collapses accuracy to ~chance.
	for _, r := range part {
		acc := float64(r.BitsCorrect) / float64(r.BitsSent)
		if acc > 0.75 {
			t.Errorf("partitioned period %dµs: accuracy %f — channel not closed", r.PeriodUS, acc)
		}
	}
}

func TestE3bCombinedDominates(t *testing.T) {
	res, err := RunE3bDetectionAblation(7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rates["combined"] != 1.0 {
		t.Fatalf("combined rate = %v\n%s", res.Rates["combined"], res.Table.Render())
	}
	if res.Rates["signature-only"] >= 1.0 {
		t.Fatalf("signature-only rate = %v — ablation shows no gap", res.Rates["signature-only"])
	}
	if res.Rates["anomaly-only"] >= 1.0 {
		t.Fatalf("anomaly-only rate = %v — ablation shows no gap", res.Rates["anomaly-only"])
	}
	// Combined must dominate both single modes on every scenario.
	for _, r := range res.Rows {
		if (r.Signature || r.Anomaly) && !r.Combined {
			t.Errorf("scenario %s detected by a single mode but not combined", r.Scenario)
		}
	}
}

func TestE11PACCatchesROP(t *testing.T) {
	res, err := RunE11PointerAuth(7, 500)
	if err != nil {
		t.Fatal(err)
	}
	plain, pac := res.Rows[0], res.Rows[1]
	if plain.GadgetRuns != plain.Corruptions {
		t.Fatalf("plain stack: %d gadget runs of %d corruptions", plain.GadgetRuns, plain.Corruptions)
	}
	if plain.Caught != 0 {
		t.Fatal("plain stack cannot detect anything")
	}
	// PAC: essentially every corruption trapped; forgery probability is
	// 2^-16 per trial, so over 500 trials expect ~0 successes.
	if pac.Caught < pac.Corruptions-1 {
		t.Fatalf("pac stack caught %d of %d", pac.Caught, pac.Corruptions)
	}
	if pac.GadgetRuns > 1 {
		t.Fatalf("pac stack allowed %d gadget runs", pac.GadgetRuns)
	}
}
