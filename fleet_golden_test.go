package cres

import (
	"os"
	"path/filepath"
	"testing"
)

// TestFleetSummaryGolden pins the E8 streaming-fleet table two ways:
// byte-identical between -parallel 1 and 8 (per-device fate derives
// from (seed, index), so the worker count can only reorder work, never
// results), and byte-identical to the committed golden file, so any
// accidental change to the derivation streams, the virtual-time model,
// the histogram buckets or the bottom-K sample shows up as a readable
// diff. Regenerate with:
//
//	go test -run TestFleetSummaryGolden -update-golden .
//
// The table holds only virtual-time quantities — no host clocks — so
// it is stable across hosts and Go releases. The sizes cross every
// structural boundary: sub-batch (4), multi-batch (512) and
// multi-shard with a partial tail (5000).
func TestFleetSummaryGolden(t *testing.T) {
	sizes := []int{4, 512, 5000}
	serial, err := RunE8FleetAttestation(sizes, 7, WithParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunE8FleetAttestation(sizes, 7, WithParallel(8))
	if err != nil {
		t.Fatal(err)
	}
	got := serial.Table.Render() + "\n" + serial.Series.Render()
	if p := parallel.Table.Render() + "\n" + parallel.Series.Render(); got != p {
		t.Fatalf("fleet table depends on parallelism:\n--- p1 ---\n%s\n--- p8 ---\n%s", got, p)
	}

	golden := filepath.Join("testdata", "fleet_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("fleet table drifted from %s (re-run with -update-golden if intended):\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}
