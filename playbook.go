package cres

import (
	"fmt"

	"cres/internal/core"
	"cres/internal/monitor"
)

// installPlaybook wires the default response strategy: which monitor
// signature triggers which active countermeasure. This is the concrete
// form of the paper's "response and recovery strategies initiated by the
// System Security Manager" (Section V, Characteristic 3).
func (d *Device) installPlaybook() error {
	// isolate quarantines an initiator and sheds dependent services.
	isolate := func(resource, reason string) (string, error) {
		if d.Responder.IsIsolated(resource) {
			return fmt.Sprintf("%s already isolated", resource), nil
		}
		if err := d.Responder.IsolateInitiator(resource, reason); err != nil {
			return "", err
		}
		stopped := d.Degrader.ResourceDown(resource)
		return fmt.Sprintf("isolated %s; services shed: %v; critical up: %v",
			resource, stopped, d.Degrader.CriticalUp()), nil
	}

	plays := []core.Play{
		{
			Name:            "isolate-on-watchpoint",
			SignaturePrefix: monitor.SigBusWatchpoint,
			MinSeverity:     monitor.Critical,
			Respond: func(a monitor.Alert) (string, error) {
				return isolate(a.Resource, "watched-region tamper: "+a.Detail)
			},
		},
		{
			Name:            "isolate-on-security-fault",
			SignaturePrefix: monitor.SigBusSecurityFault,
			MinSeverity:     monitor.Critical,
			Respond: func(a monitor.Alert) (string, error) {
				return isolate(a.Resource, "secure-region probing: "+a.Detail)
			},
		},
		{
			Name:            "isolate-on-world-mismatch",
			SignaturePrefix: monitor.SigBusWorldMismatch,
			MinSeverity:     monitor.Critical,
			Respond: func(a monitor.Alert) (string, error) {
				// The bus itself is compromised: isolate the initiator
				// whose attribute was forged AND purge shared state the
				// attacker may have touched.
				desc, err := isolate(a.Resource, "bus attribute tampering: "+a.Detail)
				if err != nil {
					return "", err
				}
				d.Responder.FlushCache("purge after bus attribute tampering")
				return desc + "; cache flushed", nil
			},
		},
		{
			Name:            "contain-on-cfi",
			SignaturePrefix: "cfi.",
			MinSeverity:     monitor.Critical,
			Respond: func(a monitor.Alert) (string, error) {
				// Code execution on the core is attacker-controlled:
				// halt the core outright, isolate its bus port, shed
				// its services onto fallbacks.
				if a.Resource == d.SoC.AppCore.Name() {
					d.Responder.HaltCore(d.SoC.AppCore, "control-flow integrity violation")
				}
				return isolate(a.Resource, "control-flow hijack: "+a.Detail)
			},
		},
		{
			Name:            "partition-on-covert-channel",
			SignaturePrefix: monitor.SigTimingCrossWorld,
			MinSeverity:     monitor.Critical,
			Respond: func(monitor.Alert) (string, error) {
				d.Responder.FlushCache("covert channel detected")
				d.Responder.PartitionCache("close cross-world eviction channel")
				return "cache flushed and world-partitioned", nil
			},
		},
		{
			Name:            "failsafe-on-env",
			SignaturePrefix: monitor.SigEnvOutOfBand,
			MinSeverity:     monitor.Critical,
			Respond: func(a monitor.Alert) (string, error) {
				// Physical tampering in progress: drive actuators to
				// their fail-safe values until the environment clears.
				for _, act := range d.Actuators {
					d.Responder.LockActuator(act, "environmental tamper: "+a.Detail)
				}
				return fmt.Sprintf("%d actuators locked to fail-safe", len(d.Actuators)), nil
			},
		},
		{
			Name:            "throttle-on-flood",
			SignaturePrefix: monitor.SigBusRateAnomaly,
			MinSeverity:     monitor.Warning,
			Respond: func(a monitor.Alert) (string, error) {
				return isolate(a.Resource, "bus flooding: "+a.Detail)
			},
		},
	}
	for _, p := range plays {
		if err := d.SSM.AddPlay(p); err != nil {
			return fmt.Errorf("cres: playbook: %w", err)
		}
	}
	return nil
}

// Recover restores an isolated initiator and re-arms its plays — the
// device-level recovery flow after firmware repair or operator action.
func (d *Device) Recover(resource, detail string) error {
	if d.SSM == nil {
		return fmt.Errorf("cres: baseline architecture has no targeted recovery")
	}
	d.SSM.RecordRecovery(fmt.Sprintf("recovering %s: %s", resource, detail))
	if d.Responder.IsIsolated(resource) {
		if err := d.Responder.RestoreInitiator(resource, detail); err != nil {
			return err
		}
	}
	if resource == d.SoC.AppCore.Name() {
		if d.SoC.AppCore.Halted() {
			d.Responder.ResumeCore(d.SoC.AppCore, detail)
		}
		if d.CFIMon != nil {
			d.CFIMon.Reset(resource)
		}
	}
	restored := d.Degrader.ResourceUp(resource)
	for _, play := range []string{
		"isolate-on-watchpoint", "isolate-on-security-fault", "isolate-on-world-mismatch",
		"contain-on-cfi", "throttle-on-flood",
	} {
		d.SSM.ResetPlay(play, resource)
	}
	d.SSM.MarkRecovered(fmt.Sprintf("%s restored; services back: %v", resource, restored))
	return nil
}
