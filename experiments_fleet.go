package cres

import (
	"fmt"
	"time"

	"cres/internal/attest"
	"cres/internal/cryptoutil"
	"cres/internal/harness"
	"cres/internal/m2m"
	"cres/internal/report"
	"cres/internal/sim"
	"cres/internal/tpm"
)

// This file implements experiment E8: fleet-scale remote attestation —
// the secure provisioning & attestation requirement of Table I exercised
// at the verifier.
//
// Fleets larger than fleetShardSize are split across verifier shards:
// each shard is an independent engine + network + verifier appraising a
// contiguous slice of the fleet, the distributed-verifier tier a real
// operator deploys at scale. Shards run concurrently under the harness
// pool; fleet completion is the slowest shard (the shards operate in
// parallel in the modelled deployment too), and catch counts merge in
// shard order, so results are independent of the parallelism degree.

// fleetShardSize is the number of devices one verifier shard appraises.
// The shard split is a function of fleet size only — never of the worker
// pool — so output is identical at any parallelism.
const fleetShardSize = 512

// FleetSizes returns the default E8 sweep: quick keeps CI smoke fast,
// full stretches to the 10k-device fleets the sharded harness makes
// affordable.
func FleetSizes(quick bool) []int {
	if quick {
		return []int{4, 16, 64}
	}
	return []int{4, 16, 64, 256, 1024, 4096, 10240}
}

// E8Row is one fleet size's outcome.
type E8Row struct {
	Devices  int
	Tampered int
	// Shards is the number of verifier shards the fleet was split into.
	Shards int
	// Caught is how many tampered devices were flagged untrusted.
	Caught int
	// FalseAlarms is how many healthy devices were flagged.
	FalseAlarms int
	// Completion is the virtual time from first challenge to last
	// appraisal, taken over the slowest shard (shards verify in
	// parallel).
	Completion time.Duration
	// PerDevice is the mean appraisal completion per device.
	PerDevice time.Duration
}

// E8Result is the fleet attestation sweep.
type E8Result struct {
	Rows   []E8Row
	Table  *report.Table
	Series report.Series
}

// fleetMeasurements every healthy device extends at boot.
var (
	fleetROM    = cryptoutil.Sum([]byte("fleet boot rom"))
	fleetFW     = cryptoutil.Sum([]byte("fleet firmware v7"))
	fleetPolicy = cryptoutil.Sum([]byte("fleet policy v1"))
	fleetEvil   = cryptoutil.Sum([]byte("implant"))
)

// fleetShardOut is one verifier shard's contribution to a fleet row.
type fleetShardOut struct {
	tampered    int
	caught      int
	falseAlarms int
	completion  time.Duration
}

// RunE8FleetAttestation sweeps fleet sizes, tampering with 1 in 8
// devices, and measures verifier completion time and catch rate. Every
// verifier shard of every size is one harness shard.
func RunE8FleetAttestation(sizes []int, seed int64, opts ...RunOption) (*E8Result, error) {
	rc := newRunCfg(opts)
	if len(sizes) == 0 {
		sizes = FleetSizes(false)
	}

	// Flatten (size, device-range) pairs into one deterministic job
	// list so large fleets load-balance across the pool.
	type fleetJob struct {
		size, lo, hi int
	}
	var jobs []fleetJob
	for _, n := range sizes {
		for lo := 0; lo < n; lo += fleetShardSize {
			hi := lo + fleetShardSize
			if hi > n {
				hi = n
			}
			jobs = append(jobs, fleetJob{size: n, lo: lo, hi: hi})
		}
	}

	outs, err := harness.Map(rc.pool, len(jobs), seed, func(sh harness.Shard) (fleetShardOut, error) {
		j := jobs[sh.Index]
		return runFleetShard(j.lo, j.hi, sh.Seed)
	})
	if err != nil {
		return nil, err
	}

	res := &E8Result{Series: report.Series{Name: "attestation-completion", XLabel: "devices", YLabel: "ms"}}
	job := 0
	for _, n := range sizes {
		row := E8Row{Devices: n}
		for lo := 0; lo < n; lo += fleetShardSize {
			out := outs[job]
			job++
			row.Shards++
			row.Tampered += out.tampered
			row.Caught += out.caught
			row.FalseAlarms += out.falseAlarms
			if out.completion > row.Completion {
				row.Completion = out.completion
			}
		}
		if n > 0 {
			row.PerDevice = row.Completion / time.Duration(n)
		}
		res.Rows = append(res.Rows, row)
		res.Series.Add(float64(n), float64(row.Completion.Milliseconds()))
	}

	t := report.NewTable("E8 — Fleet attestation sweep (1 in 8 devices tampered; fleets > 512 split across verifier shards)",
		"Devices", "Shards", "Tampered", "Caught", "False alarms", "Completion (virtual)", "Per device")
	for _, r := range res.Rows {
		t.AddRow(report.I(r.Devices), report.I(r.Shards), report.I(r.Tampered), report.I(r.Caught),
			report.I(r.FalseAlarms), r.Completion.String(), r.PerDevice.String())
	}
	res.Table = t
	return res, nil
}

// runFleetShard builds one verifier shard appraising the devices with
// global indices [lo, hi) and returns its counts and completion time.
func runFleetShard(lo, hi int, seed int64) (fleetShardOut, error) {
	var out fleetShardOut
	engine := sim.New(seed)
	net := m2m.NewNetwork(engine, m2m.Config{Latency: 500 * time.Microsecond})

	vkey, err := cryptoutil.KeyPairFromSeed(cryptoutil.DeriveKey([]byte("verifier"), "v", "", 32))
	if err != nil {
		return out, err
	}
	vep, err := net.AddNode("verifier", vkey)
	if err != nil {
		return out, err
	}
	policy := &attest.Policy{
		AIKs: make(map[string]cryptoutil.PublicKey, hi-lo),
		AllowedMeasurements: map[cryptoutil.Digest]bool{
			fleetROM: true, fleetFW: true, fleetPolicy: true,
		},
	}
	verifier := attest.NewVerifier(engine, vep, policy, nil)

	for i := lo; i < hi; i++ {
		name := fleetDeviceName(i)
		dkey, err := cryptoutil.KeyPairFromSeed(cryptoutil.DeriveKey([]byte("fleet-dev"), name, "", 32))
		if err != nil {
			return out, err
		}
		dep, err := net.AddNode(name, dkey)
		if err != nil {
			return out, err
		}
		dep.Trust("verifier", vep.PublicKey())
		vep.Trust(name, dep.PublicKey())

		tp, err := tpm.New(cryptoutil.NewDeterministicEntropy([]byte(name)))
		if err != nil {
			return out, err
		}
		tp.Extend(tpm.PCRBootROM, fleetROM, "rom")
		if isTamperedIndex(i) { // every 8th device boots an implant
			tp.Extend(tpm.PCRFirmware, fleetEvil, "???")
			out.tampered++
		} else {
			tp.Extend(tpm.PCRFirmware, fleetFW, "firmware v7")
		}
		tp.Extend(tpm.PCRPolicy, fleetPolicy, "policy")
		attest.NewAttester(tp, dep)
		policy.AIKs[name] = tp.AIKPublic()
	}

	start := engine.Now()
	for i := lo; i < hi; i++ {
		if err := verifier.Challenge(fleetDeviceName(i)); err != nil {
			return out, err
		}
	}
	engine.RunFor(time.Duration(hi-lo)*2*time.Millisecond + 100*time.Millisecond)
	verifier.TimeoutPending()

	var last sim.VirtualTime
	for _, a := range verifier.Appraisals() {
		if a.At > last {
			last = a.At
		}
		healthy := !isTamperedName(a.Device)
		if a.Verdict == attest.VerdictUntrusted {
			if healthy {
				out.falseAlarms++
			} else {
				out.caught++
			}
		}
	}
	out.completion = last.Sub(start)
	return out, nil
}

// fleetDeviceName names a fleet device by its global index.
func fleetDeviceName(i int) string { return fmt.Sprintf("device-%03d", i) }

// isTamperedIndex picks the tampered devices: every 8th by global index.
func isTamperedIndex(i int) bool { return i%8 == 3 }

// isTamperedName classifies an appraised device by parsing its global
// index back out of its name. The format verb must be %d, not the %03d
// used for printing: Sscanf treats the 3 as a maximum field width and
// would silently truncate "device-1234" to index 123, misclassifying
// every device past the first thousand.
func isTamperedName(name string) bool {
	var i int
	if _, err := fmt.Sscanf(name, "device-%d", &i); err != nil {
		return false
	}
	return isTamperedIndex(i)
}
