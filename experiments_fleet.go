package cres

import (
	"runtime"
	"time"

	"cres/internal/fleet"
	"cres/internal/report"
	"cres/internal/scenario"
)

// This file implements experiment E8: fleet-scale remote attestation —
// the secure provisioning & attestation requirement of Table I exercised
// at the verifier, at production scale.
//
// The sweep runs on the streaming fleet engine (internal/fleet): each
// verifier shard appraises its slice of the fleet in fixed-size batches
// and folds every appraisal into a mergeable summary the moment it
// concludes, so memory is bounded by the batch size — never the fleet —
// and the full-mode sweep reaches 1,048,576 devices. Device identity is
// the global fleet index end to end: share assignment, tamper verdict,
// nonce and anomaly-sample priority all derive from (seed, index), so
// there is no name round-trip to truncate or misparse, and shard
// summaries merge associatively in any order.

// FleetSizes returns the default E8 sweep: quick keeps CI smoke fast
// (but still crosses a batch boundary), full stretches three orders of
// magnitude further to a million-device fleet.
func FleetSizes(quick bool) []int {
	if quick {
		return []int{4, 64, 512}
	}
	return []int{4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
}

// E8FleetSpec is the reference fleet workload: a single-share fleet of
// the reference device with every 8th device tampered — the
// deterministic rule the classification regression tests pin.
func E8FleetSpec(size int) scenario.FleetSpec {
	return scenario.FleetSpec{
		Name:         "e8",
		Size:         size,
		TamperEvery:  8,
		TamperOffset: 3,
	}
}

// E8Row is one fleet size's outcome.
type E8Row struct {
	// Devices is the fleet size.
	Devices int
	// Shards is the number of verifier shards the fleet was split into.
	Shards int
	// Summary is the merged fleet summary: counts, latency histogram,
	// completion and the anomaly sample.
	Summary fleet.Summary
}

// E8Result is the fleet attestation sweep.
type E8Result struct {
	Rows   []E8Row
	Table  *report.Table
	Series report.Series
	// TotalDevices is the number of devices appraised across the sweep,
	// and Wall the host time the sweep took — DevicesPerSec is the
	// throughput the benchmark artifact records.
	TotalDevices int
	Wall         time.Duration
	// BatchSize and ShardSize are the engine batching configuration the
	// sweep ran with, recorded in the benchmark artifact so throughput
	// comparisons are reproducible config-for-config.
	BatchSize, ShardSize int
	// AllocsPerDevice is the sweep's heap allocations per appraised
	// device (total runtime mallocs across the sweep divided by
	// TotalDevices). The batched hot path pools everything reusable, so
	// this stays O(1); cmd/benchdiff gates it against the same absolute
	// budget as the internal/fleet allocation test.
	AllocsPerDevice float64
}

// DevicesPerSec is the sweep's host-clock appraisal throughput.
func (r *E8Result) DevicesPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.TotalDevices) / r.Wall.Seconds()
}

// RunE8FleetAttestation sweeps fleet sizes on the streaming fleet
// engine, measuring catch rates, appraisal-latency distribution and
// verifier completion time. Each size runs through the engine's shared
// fleet.(*Engine).RunParallel entry point — parallelism is configured
// with the same ...RunOption shape as every other experiment, and
// shard summaries merge in shard order to the same row at any pool
// width.
func RunE8FleetAttestation(sizes []int, seed int64, opts ...RunOption) (*E8Result, error) {
	rc := newRunCfg(opts)
	if len(sizes) == 0 {
		sizes = FleetSizes(false)
	}

	engines := make([]*fleet.Engine, len(sizes))
	for i, n := range sizes {
		cf, err := E8FleetSpec(n).Compile()
		if err != nil {
			return nil, err
		}
		engines[i], err = cf.Engine(seed)
		if err != nil {
			return nil, err
		}
	}

	res := &E8Result{
		Series: report.Series{Name: "attestation-completion", XLabel: "devices", YLabel: "ms"},
	}
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	for i, n := range sizes {
		sum, err := engines[i].RunParallel(rc.pool)
		if err != nil {
			return nil, err
		}
		row := E8Row{Devices: n, Shards: engines[i].NumShards(), Summary: sum}
		res.TotalDevices += row.Summary.Devices
		res.Rows = append(res.Rows, row)
		res.Series.Add(float64(n), float64(row.Summary.Completion.Milliseconds()))
	}
	res.Wall = time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	if res.TotalDevices > 0 {
		res.AllocsPerDevice = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(res.TotalDevices)
	}
	if len(engines) > 0 {
		cfg := engines[0].Config()
		res.BatchSize, res.ShardSize = cfg.BatchSize, cfg.ShardSize
	}

	t := report.NewTable("E8 — Fleet attestation sweep (streaming engine; 1 in 8 devices tampered; memory bounded by batch, not fleet)",
		"Devices", "Shards", "Batches", "Tampered", "Caught", "False alarms",
		"Completion (virtual)", "Mean latency", "p50", "p99", "Anomaly sample")
	for _, r := range res.Rows {
		s := r.Summary
		t.AddRow(report.I(r.Devices), report.I(r.Shards), report.I(s.Batches),
			report.I(s.Tampered), report.I(s.Caught), report.I(s.FalseAlarms),
			s.Completion.String(), s.MeanLatency().String(),
			s.Quantile(0.5).String(), s.Quantile(0.99).String(),
			s.SampleIndices(3))
	}
	res.Table = t
	return res, nil
}
