package cres

import (
	"fmt"
	"time"

	"cres/internal/attest"
	"cres/internal/cryptoutil"
	"cres/internal/m2m"
	"cres/internal/report"
	"cres/internal/sim"
	"cres/internal/tpm"
)

// This file implements experiment E8: fleet-scale remote attestation —
// the secure provisioning & attestation requirement of Table I exercised
// at the verifier.

// E8Row is one fleet size's outcome.
type E8Row struct {
	Devices  int
	Tampered int
	// Caught is how many tampered devices were flagged untrusted.
	Caught int
	// FalseAlarms is how many healthy devices were flagged.
	FalseAlarms int
	// Completion is the virtual time from first challenge to last
	// appraisal.
	Completion time.Duration
	// PerDevice is the mean appraisal completion per device.
	PerDevice time.Duration
}

// E8Result is the fleet attestation sweep.
type E8Result struct {
	Rows   []E8Row
	Table  *report.Table
	Series report.Series
}

// fleetMeasurements every healthy device extends at boot.
var (
	fleetROM    = cryptoutil.Sum([]byte("fleet boot rom"))
	fleetFW     = cryptoutil.Sum([]byte("fleet firmware v7"))
	fleetPolicy = cryptoutil.Sum([]byte("fleet policy v1"))
	fleetEvil   = cryptoutil.Sum([]byte("implant"))
)

// RunE8FleetAttestation sweeps fleet sizes, tampering with 1 in 8
// devices, and measures verifier completion time and catch rate.
func RunE8FleetAttestation(sizes []int, seed int64) (*E8Result, error) {
	if len(sizes) == 0 {
		sizes = []int{4, 16, 64, 256}
	}
	res := &E8Result{Series: report.Series{Name: "attestation-completion", XLabel: "devices", YLabel: "ms"}}

	for _, n := range sizes {
		engine := sim.New(seed)
		net := m2m.NewNetwork(engine, m2m.Config{Latency: 500 * time.Microsecond})

		vkey, err := cryptoutil.KeyPairFromSeed(cryptoutil.DeriveKey([]byte("verifier"), "v", "", 32))
		if err != nil {
			return nil, err
		}
		vep, err := net.AddNode("verifier", vkey)
		if err != nil {
			return nil, err
		}
		policy := &attest.Policy{
			AIKs: make(map[string]cryptoutil.PublicKey, n),
			AllowedMeasurements: map[cryptoutil.Digest]bool{
				fleetROM: true, fleetFW: true, fleetPolicy: true,
			},
		}
		verifier := attest.NewVerifier(engine, vep, policy, nil)

		tampered := 0
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("device-%03d", i)
			dkey, err := cryptoutil.KeyPairFromSeed(cryptoutil.DeriveKey([]byte("fleet-dev"), name, "", 32))
			if err != nil {
				return nil, err
			}
			dep, err := net.AddNode(name, dkey)
			if err != nil {
				return nil, err
			}
			dep.Trust("verifier", vep.PublicKey())
			vep.Trust(name, dep.PublicKey())

			tp, err := tpm.New(cryptoutil.NewDeterministicEntropy([]byte(name)))
			if err != nil {
				return nil, err
			}
			tp.Extend(tpm.PCRBootROM, fleetROM, "rom")
			if i%8 == 3 { // every 8th device boots an implant
				tp.Extend(tpm.PCRFirmware, fleetEvil, "???")
				tampered++
			} else {
				tp.Extend(tpm.PCRFirmware, fleetFW, "firmware v7")
			}
			tp.Extend(tpm.PCRPolicy, fleetPolicy, "policy")
			attest.NewAttester(tp, dep)
			policy.AIKs[name] = tp.AIKPublic()
		}

		start := engine.Now()
		for i := 0; i < n; i++ {
			if err := verifier.Challenge(fmt.Sprintf("device-%03d", i)); err != nil {
				return nil, err
			}
		}
		engine.RunFor(time.Duration(n)*2*time.Millisecond + 100*time.Millisecond)
		verifier.TimeoutPending()

		var last sim.VirtualTime
		caught, falseAlarms := 0, 0
		for _, a := range verifier.Appraisals() {
			if a.At > last {
				last = a.At
			}
			healthy := !isTamperedName(a.Device)
			switch a.Verdict {
			case attest.VerdictUntrusted:
				if healthy {
					falseAlarms++
				} else {
					caught++
				}
			case attest.VerdictTrusted:
				if !healthy {
					// missed: counted by caught < tampered
				}
			}
		}
		row := E8Row{
			Devices:     n,
			Tampered:    tampered,
			Caught:      caught,
			FalseAlarms: falseAlarms,
			Completion:  last.Sub(start),
		}
		if n > 0 {
			row.PerDevice = row.Completion / time.Duration(n)
		}
		res.Rows = append(res.Rows, row)
		res.Series.Add(float64(n), float64(row.Completion.Milliseconds()))
	}

	t := report.NewTable("E8 — Fleet attestation sweep (1 in 8 devices tampered)",
		"Devices", "Tampered", "Caught", "False alarms", "Completion (virtual)", "Per device")
	for _, r := range res.Rows {
		t.AddRow(report.I(r.Devices), report.I(r.Tampered), report.I(r.Caught),
			report.I(r.FalseAlarms), r.Completion.String(), r.PerDevice.String())
	}
	res.Table = t
	return res, nil
}

func isTamperedName(name string) bool {
	var i int
	if _, err := fmt.Sscanf(name, "device-%03d", &i); err != nil {
		return false
	}
	return i%8 == 3
}
