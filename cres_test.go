package cres

import (
	"strings"
	"testing"
	"time"

	"cres/internal/attack"
	"cres/internal/boot"
	"cres/internal/core"
	"cres/internal/hw"
	"cres/internal/m2m"
	"cres/internal/monitor"
	"cres/internal/scenario"
	"cres/internal/sim"
)

func newCRESDevice(t *testing.T, opts ...Option) *Device {
	t.Helper()
	d, err := NewDevice("dut", append([]Option{WithSeed(17)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Boot(); err != nil {
		t.Fatal(err)
	}
	return d
}

// runHealthy generates background workload: periodic sensing loop along
// the legal CFG path plus bus traffic, warming anomaly baselines.
func runHealthy(t *testing.T, d *Device, dur time.Duration) {
	t.Helper()
	blocks := []hw.BlockID{1, 2, 3, 4}
	i := 0
	tk, err := sim.NewTicker(d.Engine, 100*time.Microsecond, func(sim.VirtualTime) {
		if d.SoC.AppCore.Halted() {
			return
		}
		d.SoC.AppCore.ExecBlock(blocks[i%len(blocks)])
		d.SoC.AppCore.Read(hw.AddrSRAM+hw.Addr((i*64)%8192), 16)
		i++
	})
	if err != nil {
		t.Fatal(err)
	}
	d.RunFor(dur)
	tk.Stop()
}

func TestDeviceBootHealthy(t *testing.T) {
	d := newCRESDevice(t)
	rep := d.BootReport()
	if rep == nil || !rep.Healthy {
		t.Fatalf("boot report = %+v", rep)
	}
	if d.SSM.State() != core.StateHealthy {
		t.Fatalf("state = %v", d.SSM.State())
	}
	if !d.Degrader.CriticalUp() {
		t.Fatal("services not started")
	}
	// Boot is in the evidence log.
	found := false
	for _, r := range d.SSM.Log().Records() {
		if strings.Contains(r.Detail, "booted firmware v1") {
			found = true
		}
	}
	if !found {
		t.Fatal("boot not recorded as evidence")
	}
}

func TestDeviceNameRequired(t *testing.T) {
	if _, err := NewDevice(""); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestHealthyWorkloadStaysHealthy(t *testing.T) {
	d := newCRESDevice(t)
	runHealthy(t, d, 20*time.Millisecond)
	if d.SSM.State() != core.StateHealthy {
		t.Fatalf("healthy workload ended in state %v", d.SSM.State())
	}
	if d.SSM.ResponsesFired() != 0 {
		t.Fatalf("healthy workload triggered %d responses", d.SSM.ResponsesFired())
	}
}

func TestCodeInjectionContained(t *testing.T) {
	d := newCRESDevice(t)
	runHealthy(t, d, 15*time.Millisecond)

	if err := Launch(d, attack.CodeInjection{}); err != nil {
		t.Fatal(err)
	}
	d.RunFor(10 * time.Millisecond)

	// Detected.
	if _, ok := d.SSM.FirstDetection(monitor.SigCFIUnknownBlock); !ok {
		t.Fatal("injection not detected")
	}
	// Contained: core halted and isolated.
	if !d.SoC.AppCore.Halted() {
		t.Fatal("compromised core not halted")
	}
	if !d.Responder.IsIsolated("app-core") {
		t.Fatal("compromised core not isolated")
	}
	// Graceful degradation: critical service survives on fallback.
	if !d.Degrader.CriticalUp() {
		t.Fatal("critical service down — degradation failed")
	}
	up, _ := d.Degrader.Up("local-hmi")
	if up {
		t.Fatal("non-critical service still up on isolated resource")
	}
	if d.SSM.State() != core.StateDegraded {
		t.Fatalf("state = %v", d.SSM.State())
	}
}

func TestRecoverRestoresService(t *testing.T) {
	d := newCRESDevice(t)
	runHealthy(t, d, 15*time.Millisecond)
	Launch(d, attack.CodeInjection{})
	d.RunFor(10 * time.Millisecond)
	if !d.SoC.AppCore.Halted() {
		t.Fatal("setup: not contained")
	}

	if err := d.Recover("app-core", "firmware reflashed by operator"); err != nil {
		t.Fatal(err)
	}
	if d.SoC.AppCore.Halted() || d.Responder.IsIsolated("app-core") {
		t.Fatal("not restored")
	}
	if d.SSM.State() != core.StateHealthy {
		t.Fatalf("state = %v", d.SSM.State())
	}
	up, _ := d.Degrader.Up("local-hmi")
	if !up {
		t.Fatal("services not restored")
	}
	// The full detect->respond->recover arc is in the evidence log.
	var sawResponse, sawRecovery bool
	for _, r := range d.SSM.Log().Records() {
		if strings.Contains(r.Detail, "contain-on-cfi") {
			sawResponse = true
		}
		if strings.Contains(r.Detail, "recovered") {
			sawRecovery = true
		}
	}
	if !sawResponse || !sawRecovery {
		t.Fatalf("evidence arc incomplete: response=%v recovery=%v", sawResponse, sawRecovery)
	}
}

func TestSecureProbeIsolation(t *testing.T) {
	d := newCRESDevice(t)
	runHealthy(t, d, 15*time.Millisecond)
	Launch(d, attack.SecureProbe{})
	d.RunFor(10 * time.Millisecond)
	if !d.Responder.IsIsolated("app-core") {
		t.Fatal("probing core not isolated")
	}
}

func TestCovertChannelClosedByPartitioning(t *testing.T) {
	d := newCRESDevice(t)
	// Install the victim trustlet and secret.
	if err := d.TEE.StoreSecret("m2m-key", []byte("secret")); err != nil {
		t.Fatal(err)
	}
	im := boot.BuildSigned("keymaster", 1, []byte("ta"), d.Vendor)
	if err := d.TEE.LoadTrustlet(im, d.Vendor.Public()); err != nil {
		t.Fatal(err)
	}
	runHealthy(t, d, 15*time.Millisecond)

	if err := Launch(d, attack.CacheCovertChannel{Trustlet: "keymaster", Bits: 64}); err != nil {
		t.Fatal(err)
	}
	d.RunFor(10 * time.Millisecond)
	if _, ok := d.SSM.FirstDetection(monitor.SigTimingCrossWorld); !ok {
		t.Fatal("covert channel not detected")
	}
	if !d.SoC.Cache.Partitioned() {
		t.Fatal("cache not partitioned in response")
	}
}

func TestEnvGlitchLocksActuator(t *testing.T) {
	d := newCRESDevice(t)
	breaker := hw.NewActuator("breaker-1", 0)
	d.AddActuator(breaker)
	runHealthy(t, d, 15*time.Millisecond)

	Launch(d, attack.VoltageGlitch{Offset: 0.5, Duration: 3 * time.Millisecond})
	d.RunFor(5 * time.Millisecond)
	if !breaker.Locked() {
		t.Fatal("actuator not locked during physical tamper")
	}
}

func TestBaselineDeviceHasNoDetection(t *testing.T) {
	d, err := NewDevice("legacy", WithArchitecture(ArchBaseline), WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Boot(); err != nil {
		t.Fatal(err)
	}
	if d.SSM != nil || d.Responder != nil || d.BusMon != nil {
		t.Fatal("baseline device has CRES components")
	}
	if d.Baseline == nil || d.PlainLog == nil {
		t.Fatal("baseline components missing")
	}
	// Attacks run with impunity.
	if err := Launch(d, attack.SecureProbe{}); err != nil {
		t.Fatal(err)
	}
	d.RunFor(10 * time.Millisecond)
	// Nothing isolated anything; services unaffected; no record beyond boot.
	if !d.Degrader.CriticalUp() {
		t.Fatal("baseline services down without reboot")
	}
	if d.ForensicReport(0, d.Now()) != nil {
		t.Fatal("baseline produced a forensic report")
	}
}

func TestBaselineRebootDropsAllServices(t *testing.T) {
	d, err := NewDevice("legacy", WithArchitecture(ArchBaseline), WithRebootTime(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	d.Boot()
	if err := d.Baseline.Reboot("operator noticed something odd", nil); err != nil {
		t.Fatal(err)
	}
	if d.Degrader.CriticalUp() {
		t.Fatal("critical service survived baseline reboot")
	}
	d.RunFor(150 * time.Millisecond)
	if !d.Degrader.CriticalUp() {
		t.Fatal("services not back after reboot")
	}
}

func TestForensicReportTellsTheStory(t *testing.T) {
	d := newCRESDevice(t)
	runHealthy(t, d, 10*time.Millisecond)
	attackStart := d.Now()
	Launch(d, attack.FirmwareTamper{})
	d.RunFor(10 * time.Millisecond)

	rep := d.ForensicReport(attackStart, d.Now())
	if rep == nil {
		t.Fatal("no report")
	}
	if !rep.ChainIntact {
		t.Fatal("chain broken")
	}
	if rep.Alerts == 0 || rep.Responses == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Continuity < 0.9 {
		t.Fatalf("continuity = %f", rep.Continuity)
	}
	if rep.AnchorsTotal == 0 || rep.AnchorsValid != rep.AnchorsTotal {
		t.Fatalf("anchors %d/%d", rep.AnchorsValid, rep.AnchorsTotal)
	}
}

func TestTwoDevicesOnSharedNetwork(t *testing.T) {
	engine := sim.New(23)
	net := m2m.NewNetwork(engine, m2m.Config{})
	a, err := NewDevice("dev-a", WithEngine(engine), WithNetwork(net))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDevice("dev-b", WithEngine(engine), WithNetwork(net))
	if err != nil {
		t.Fatal(err)
	}
	a.Boot()
	b.Boot()
	a.Endpoint.Trust("dev-b", b.Endpoint.PublicKey())
	b.Endpoint.Trust("dev-a", a.Endpoint.PublicKey())
	var got int
	b.Endpoint.Handle("ping", func(m2m.Message) { got++ })
	if err := a.Endpoint.Send("dev-b", "ping", nil); err != nil {
		t.Fatal(err)
	}
	engine.RunFor(5 * time.Millisecond)
	if got != 1 {
		t.Fatalf("got = %d", got)
	}
}

func TestArchitectureString(t *testing.T) {
	if ArchCRES.String() != "cres" || ArchBaseline.String() != "baseline" {
		t.Fatal("arch names")
	}
	for _, name := range []string{"cres", "baseline"} {
		a, err := ParseArchitecture(name)
		if err != nil || a.String() != name {
			t.Fatalf("ParseArchitecture(%q) = %v, %v", name, a, err)
		}
	}
	if _, err := ParseArchitecture("riscv"); err == nil {
		t.Fatal("bad architecture parsed")
	}
}

// TestNewDeviceFromSpec pins the declarative assembly path: a spec
// builds the device it describes, and an invalid spec fails at compile
// time, not mid-assembly.
func TestNewDeviceFromSpec(t *testing.T) {
	dev, err := NewDeviceFromSpec(scenario.DeviceSpec{Name: "spec-dev", Arch: scenario.ArchBaseline, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if dev.Arch != ArchBaseline || dev.SSM != nil || dev.Baseline == nil {
		t.Fatal("spec-built baseline device mis-assembled")
	}
	if _, err := NewDeviceFromSpec(scenario.DeviceSpec{Name: "d", Arch: "riscv"}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := NewDeviceFromSpec(scenario.DeviceSpec{}); err == nil {
		t.Fatal("nameless spec accepted")
	}
}

// TestWithMonitorsSubset checks the monitor set is honored: a device
// restricted to bus+env gets no CFI, timing or network monitor.
func TestWithMonitorsSubset(t *testing.T) {
	dev, err := NewDevice("subset", WithMonitors(scenario.MonitorBus, scenario.MonitorEnv))
	if err != nil {
		t.Fatal(err)
	}
	if dev.BusMon == nil || dev.EnvMon == nil {
		t.Fatal("requested monitors missing")
	}
	if dev.CFIMon != nil || dev.TimingMon != nil || dev.NetMon != nil {
		t.Fatal("unrequested monitors built")
	}
	if _, err := NewDevice("bad", WithMonitors("seismic")); err == nil {
		t.Fatal("unknown monitor name accepted")
	}
}

// bootBuild creates a vendor-signed image for tests.
func bootBuild(d *Device, name string, version uint64) *boot.Image {
	return boot.BuildSigned(name, version, []byte(name), d.Vendor)
}
