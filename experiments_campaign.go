package cres

import (
	"fmt"
	"time"

	"cres/internal/attack"
	"cres/internal/core"
	"cres/internal/harness"
	"cres/internal/report"
	"cres/internal/sim"
)

// This file implements E12, the scenario campaign: the full cross
// product of every attack scenario × {cres, baseline} × N seeds, each
// cell an independent device run on its own shard. Where E3 answers
// "does CRES detect scenario X at one seed", the campaign answers the
// paper's stronger claim — detection, response AND recovery hold across
// the whole scenario space regardless of the simulation's random
// stream — and it is the workload that exercises the sharded harness
// hardest (22 × N independent engines).

// CampaignConfig parameterises RunE12Campaign.
type CampaignConfig struct {
	// RootSeed seeds the campaign; every cell derives its own engine
	// seed from it. Zero is a valid root seed — it is used as given,
	// never substituted.
	RootSeed int64
	// Seeds is the number of seed replicas per (scenario, architecture)
	// cell. Default 3.
	Seeds int
	// Scenarios selects the attack scenarios. Default: the full suite.
	Scenarios []attack.Scenario
	// Warm is the healthy-workload period before the attack (default
	// 15ms) and Window the observation period after launch (default
	// 30ms).
	Warm, Window time.Duration
}

func (c *CampaignConfig) fillDefaults() {
	if c.Seeds <= 0 {
		c.Seeds = 3
	}
	if c.Scenarios == nil {
		c.Scenarios = attack.Suite()
	}
	if c.Warm <= 0 {
		c.Warm = 15 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 30 * time.Millisecond
	}
}

// E12Cell is one campaign run: one scenario on one architecture at one
// derived seed.
type E12Cell struct {
	Scenario  string
	Arch      string
	SeedIndex int
	Seed      int64
	// Detected: CRES saw every expected signature; baseline logged
	// anything at all during the attack window.
	Detected bool
	// Latency is virtual time from launch to first expected-signature
	// detection (zero when undetected).
	Latency time.Duration
	// Responded: the SSM fired at least one playbook response.
	Responded bool
	// Recovered: after the operator restored isolated resources, the
	// device reports a healthy state with its critical service up.
	// Structurally false on baseline: it has no targeted recovery.
	Recovered bool
}

// E12Row aggregates one (scenario, architecture) cell across seeds.
type E12Row struct {
	Scenario string
	Arch     string
	Seeds    int
	// Detected, Responded and Recovered count seeds where the outcome
	// held.
	Detected, Responded, Recovered int
	// MeanLatency averages detection latency over detected seeds.
	MeanLatency time.Duration
}

// E12Result is the campaign outcome matrix.
type E12Result struct {
	Cells []E12Cell
	Rows  []E12Row
	Table *report.Table
	// CRESDetectRate and BaselineDetectRate aggregate over every cell
	// of the architecture.
	CRESDetectRate, BaselineDetectRate float64
	// CRESRecoverRate is the fraction of CRES cells that ended healthy
	// with the critical service up.
	CRESRecoverRate float64
}

// RunE12Campaign runs the scenario campaign matrix. Cells are fanned
// across the harness pool; the matrix is merged in cell order, so the
// result is byte-identical at any parallelism.
func RunE12Campaign(cfg CampaignConfig, opts ...RunOption) (*E12Result, error) {
	rc := newRunCfg(opts)
	cfg.fillDefaults()

	archs := []Architecture{ArchCRES, ArchBaseline}
	perScenario := len(archs) * cfg.Seeds
	total := len(cfg.Scenarios) * perScenario

	cells, err := harness.Map(rc.pool, total, cfg.RootSeed, func(sh harness.Shard) (E12Cell, error) {
		sc := cfg.Scenarios[sh.Index/perScenario]
		rest := sh.Index % perScenario
		arch := archs[rest/cfg.Seeds]
		seedIdx := rest % cfg.Seeds
		cell, err := runCampaignCell(sc, arch, seedIdx, sh.Seed, cfg.Warm, cfg.Window)
		if err != nil {
			return E12Cell{}, fmt.Errorf("campaign %s/%s seed %d: %w", sc.Name(), arch, seedIdx, err)
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}

	res := &E12Result{Cells: cells}
	var cresCells, cresDetected, cresRecovered, baseCells, baseDetected int
	for si, sc := range cfg.Scenarios {
		for ai, arch := range archs {
			row := E12Row{Scenario: sc.Name(), Arch: arch.String(), Seeds: cfg.Seeds}
			var latSum time.Duration
			for s := 0; s < cfg.Seeds; s++ {
				cell := cells[si*perScenario+ai*cfg.Seeds+s]
				if cell.Detected {
					row.Detected++
					latSum += cell.Latency
				}
				if cell.Responded {
					row.Responded++
				}
				if cell.Recovered {
					row.Recovered++
				}
				if arch == ArchCRES {
					cresCells++
					if cell.Detected {
						cresDetected++
					}
					if cell.Recovered {
						cresRecovered++
					}
				} else {
					baseCells++
					if cell.Detected {
						baseDetected++
					}
				}
			}
			if row.Detected > 0 {
				row.MeanLatency = latSum / time.Duration(row.Detected)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	if cresCells > 0 {
		res.CRESDetectRate = float64(cresDetected) / float64(cresCells)
		res.CRESRecoverRate = float64(cresRecovered) / float64(cresCells)
	}
	if baseCells > 0 {
		res.BaselineDetectRate = float64(baseDetected) / float64(baseCells)
	}

	frac := func(n, of int) string { return fmt.Sprintf("%d/%d", n, of) }
	t := report.NewTable(
		fmt.Sprintf("E12 — Scenario campaign: %d scenarios × {cres, baseline} × %d seeds (root seed %d)",
			len(cfg.Scenarios), cfg.Seeds, cfg.RootSeed),
		"Scenario", "Arch", "Detected", "Mean latency", "Responded", "Recovered")
	for _, r := range res.Rows {
		lat, rec := "-", "-"
		if r.Detected > 0 {
			lat = r.MeanLatency.String()
		}
		if r.Arch == "cres" {
			rec = frac(r.Recovered, r.Seeds)
		}
		t.AddRow(r.Scenario, r.Arch, frac(r.Detected, r.Seeds), lat, frac(r.Responded, r.Seeds), rec)
	}
	t.AddRow("TOTAL cres", "", report.Pct(res.CRESDetectRate), "", "", report.Pct(res.CRESRecoverRate))
	t.AddRow("TOTAL baseline", "", report.Pct(res.BaselineDetectRate), "", "", "-")
	res.Table = t
	return res, nil
}

// runCampaignCell executes one campaign cell: warm, attack, observe,
// then — on CRES — the operator recovery flow.
func runCampaignCell(sc attack.Scenario, arch Architecture, seedIdx int, seed int64, warm, window time.Duration) (E12Cell, error) {
	cell := E12Cell{Scenario: sc.Name(), Arch: arch.String(), SeedIndex: seedIdx, Seed: seed}
	tb, err := newTestbed(arch, seed)
	if err != nil {
		return cell, err
	}
	if err := tb.warm(warm); err != nil {
		return cell, err
	}

	logBefore := 0
	if tb.dev.PlainLog != nil {
		logBefore = tb.dev.PlainLog.Len()
	}
	launchAt := tb.dev.Now()
	if err := sc.Launch(tb.tgt); err != nil {
		return cell, err
	}
	tb.dev.RunFor(window)

	if arch == ArchBaseline {
		cell.Detected = tb.dev.PlainLog.Len() > logBefore
		return cell, nil
	}

	all := true
	var firstAt sim.VirtualTime
	for _, sig := range sc.ExpectedSignatures() {
		d, ok := tb.dev.SSM.FirstDetection(sig)
		if !ok {
			all = false
			break
		}
		if firstAt == 0 || d.At < firstAt {
			firstAt = d.At
		}
	}
	cell.Detected = all
	if all {
		cell.Latency = firstAt.Sub(launchAt)
	}
	cell.Responded = tb.dev.SSM.ResponsesFired() > 0

	// Operator recovery: restore whatever the playbook isolated, then
	// declare the application core verified clean. Recovery counts only
	// if the device ends healthy with its critical service up.
	for _, resource := range tb.dev.Responder.Isolated() {
		if err := tb.dev.Recover(resource, "campaign: operator verified and restored"); err != nil {
			return cell, err
		}
	}
	if err := tb.dev.Recover(tb.dev.SoC.AppCore.Name(), "campaign: post-incident health check"); err != nil {
		return cell, err
	}
	tb.dev.RunFor(5 * time.Millisecond)
	cell.Recovered = tb.dev.SSM.State() == core.StateHealthy && tb.dev.Degrader.CriticalUp()
	return cell, nil
}
