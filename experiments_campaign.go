package cres

import (
	"fmt"
	"time"

	"cres/internal/core"
	"cres/internal/report"
	"cres/internal/scenario"
	"cres/internal/sim"
)

// This file implements E12, the scenario campaign: the full cross
// product of every attack — the registered single scenarios plus the
// staged multi-phase plans — × {cres, baseline} × N seeds, each cell
// an independent device run on its own shard. Where E3 answers "does
// CRES detect scenario X at one seed", the campaign answers the
// paper's stronger claim — detection, response AND recovery hold
// across the whole scenario space regardless of the simulation's
// random stream. The matrix itself is data: a scenario.CampaignSpec
// compiled into cells and fanned over the harness pool, so growing the
// campaign means declaring a new scenario or plan, not editing this
// file.

// CampaignConfig parameterises RunE12Campaign. It is the thin public
// face of scenario.CampaignSpec: defaults are filled here, validation
// happens in the spec's Compile.
type CampaignConfig struct {
	// RootSeed seeds the campaign; every cell derives its own engine
	// seed from it. Zero is a valid root seed — it is used as given,
	// never substituted.
	RootSeed int64
	// Seeds is the number of seed replicas per (attack, architecture)
	// cell. Default 3.
	Seeds int
	// Scenarios selects single-scenario attacks by registry name. Nil
	// selects every registered scenario; empty selects none.
	Scenarios []string
	// Plans selects the staged attack plans. Nil selects the built-in
	// plans; empty selects none.
	Plans []scenario.AttackPlan
	// Warm is the healthy-workload period before the attack (default
	// 15ms) and Window the observation period after launch (default
	// 30ms; plan cells extend it by the plan's horizon).
	Warm, Window time.Duration
}

// E12Cell is one campaign run: one attack on one architecture at one
// derived seed.
type E12Cell struct {
	// Scenario is the attack name — a registered scenario or a staged
	// plan.
	Scenario string
	Arch     string
	// Kind is scenario.KindScenario or scenario.KindPlan.
	Kind      string
	SeedIndex int
	Seed      int64
	// Detected: CRES saw every expected signature; baseline logged
	// anything at all during the attack window.
	Detected bool
	// Latency is virtual time from launch to first expected-signature
	// detection (zero when undetected).
	Latency time.Duration
	// Responded: the SSM fired at least one playbook response.
	Responded bool
	// Recovered: after the operator restored isolated resources, the
	// device reports a healthy state with its critical service up.
	// Structurally false on baseline: it has no targeted recovery.
	Recovered bool
}

// E12Row aggregates one (attack, architecture) cell across seeds.
type E12Row struct {
	Scenario string
	Arch     string
	Kind     string
	Seeds    int
	// Detected, Responded and Recovered count seeds where the outcome
	// held.
	Detected, Responded, Recovered int
	// MeanLatency averages detection latency over detected seeds.
	MeanLatency time.Duration
}

// E12Result is the campaign outcome matrix.
type E12Result struct {
	Cells []E12Cell
	Rows  []E12Row
	Table *report.Table
	// CRESDetectRate and BaselineDetectRate aggregate over every cell
	// of the architecture.
	CRESDetectRate, BaselineDetectRate float64
	// CRESRecoverRate is the fraction of CRES cells that ended healthy
	// with the critical service up.
	CRESRecoverRate float64
}

// RunE12Campaign compiles the campaign spec and runs its matrix. Cells
// are fanned across the harness pool; the matrix is merged in cell
// order, so the result is byte-identical at any parallelism.
func RunE12Campaign(cfg CampaignConfig, opts ...RunOption) (*E12Result, error) {
	rc := newRunCfg(opts)
	if cfg.Seeds <= 0 {
		cfg.Seeds = 3
	}
	cc, err := scenario.CampaignSpec{
		RootSeed:  cfg.RootSeed,
		Seeds:     cfg.Seeds,
		Scenarios: cfg.Scenarios,
		Plans:     cfg.Plans,
		Warm:      cfg.Warm,
		Window:    cfg.Window,
	}.Compile()
	if err != nil {
		return nil, err
	}

	cells, err := scenario.RunCells(rc.pool, cc, func(cell scenario.Cell) (E12Cell, error) {
		out, err := runCampaignCell(cell)
		if err != nil {
			return E12Cell{}, fmt.Errorf("campaign %s/%s seed %d: %w", cell.Attack.Name, cell.Device.Spec.Arch, cell.SeedIndex, err)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	res := &E12Result{Cells: cells}
	var cresCells, cresDetected, cresRecovered, baseCells, baseDetected int
	perAttack := len(cc.Devices) * cfg.Seeds
	var scenarios, plans int
	for _, att := range cc.Attacks {
		if att.Kind == scenario.KindPlan {
			plans++
		} else {
			scenarios++
		}
	}
	for ai, att := range cc.Attacks {
		for di, dev := range cc.Devices {
			row := E12Row{Scenario: att.Name, Arch: dev.Spec.Arch, Kind: att.Kind, Seeds: cfg.Seeds}
			var latSum time.Duration
			for s := 0; s < cfg.Seeds; s++ {
				cell := cells[ai*perAttack+di*cfg.Seeds+s]
				if cell.Detected {
					row.Detected++
					latSum += cell.Latency
				}
				if cell.Responded {
					row.Responded++
				}
				if cell.Recovered {
					row.Recovered++
				}
				if dev.IsCRES() {
					cresCells++
					if cell.Detected {
						cresDetected++
					}
					if cell.Recovered {
						cresRecovered++
					}
				} else {
					baseCells++
					if cell.Detected {
						baseDetected++
					}
				}
			}
			if row.Detected > 0 {
				row.MeanLatency = latSum / time.Duration(row.Detected)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	if cresCells > 0 {
		res.CRESDetectRate = float64(cresDetected) / float64(cresCells)
		res.CRESRecoverRate = float64(cresRecovered) / float64(cresCells)
	}
	if baseCells > 0 {
		res.BaselineDetectRate = float64(baseDetected) / float64(baseCells)
	}

	frac := func(n, of int) string { return fmt.Sprintf("%d/%d", n, of) }
	t := report.NewTable(
		fmt.Sprintf("E12 — Scenario campaign: %d scenarios + %d staged plans × {cres, baseline} × %d seeds (root seed %d)",
			scenarios, plans, cfg.Seeds, cfg.RootSeed),
		"Attack", "Kind", "Arch", "Detected", "Mean latency", "Responded", "Recovered")
	for _, r := range res.Rows {
		lat, rec := "-", "-"
		if r.Detected > 0 {
			lat = r.MeanLatency.String()
		}
		if r.Arch == scenario.ArchCRES {
			rec = frac(r.Recovered, r.Seeds)
		}
		t.AddRow(r.Scenario, r.Kind, r.Arch, frac(r.Detected, r.Seeds), lat, frac(r.Responded, r.Seeds), rec)
	}
	t.AddRow("TOTAL cres", "", "", report.Pct(res.CRESDetectRate), "", "", report.Pct(res.CRESRecoverRate))
	t.AddRow("TOTAL baseline", "", "", report.Pct(res.BaselineDetectRate), "", "", "-")
	res.Table = t
	return res, nil
}

// runCampaignCell executes one compiled campaign cell: build the
// device the cell's spec describes, warm, attack, observe, then — on
// CRES — the operator recovery flow.
func runCampaignCell(cell scenario.Cell) (E12Cell, error) {
	out := E12Cell{
		Scenario:  cell.Attack.Name,
		Arch:      cell.Device.Spec.Arch,
		Kind:      cell.Attack.Kind,
		SeedIndex: cell.SeedIndex,
		Seed:      cell.Seed,
	}
	spec := cell.Device.Spec
	spec.Seed = cell.Seed
	tb, err := newTestbedFromSpec(spec)
	if err != nil {
		return out, err
	}
	if err := tb.warm(cell.Warm); err != nil {
		return out, err
	}

	sc := cell.Attack.Scenario
	logBefore := 0
	if tb.dev.PlainLog != nil {
		logBefore = tb.dev.PlainLog.Len()
	}
	launchAt := tb.dev.Now()
	if err := sc.Launch(tb.tgt); err != nil {
		return out, err
	}
	tb.dev.RunFor(cell.Window)

	if tb.dev.SSM == nil {
		out.Detected = tb.dev.PlainLog.Len() > logBefore
		return out, nil
	}

	all := true
	var firstAt sim.VirtualTime
	for _, sig := range sc.ExpectedSignatures() {
		d, ok := tb.dev.SSM.FirstDetection(sig)
		if !ok {
			all = false
			break
		}
		if firstAt == 0 || d.At < firstAt {
			firstAt = d.At
		}
	}
	out.Detected = all
	if all {
		out.Latency = firstAt.Sub(launchAt)
	}
	out.Responded = tb.dev.SSM.ResponsesFired() > 0

	// Operator recovery: restore whatever the playbook isolated, then
	// declare the application core verified clean. Recovery counts only
	// if the device ends healthy with its critical service up.
	for _, resource := range tb.dev.Responder.Isolated() {
		if err := tb.dev.Recover(resource, "campaign: operator verified and restored"); err != nil {
			return out, err
		}
	}
	if err := tb.dev.Recover(tb.dev.SoC.AppCore.Name(), "campaign: post-incident health check"); err != nil {
		return out, err
	}
	tb.dev.RunFor(5 * time.Millisecond)
	out.Recovered = tb.dev.SSM.State() == core.StateHealthy && tb.dev.Degrader.CriticalUp()
	return out, nil
}
