package cres

import (
	"fmt"
	"time"

	"cres/internal/harness"
)

// This file registers every experiment with the harness registry, in
// print order. The benchmark CLI iterates the registry instead of
// owning one hand-rolled call per experiment; each runner translates
// the shared harness.Context (seed, quick, stable, pool) into the
// experiment's own knobs and hands back rendered blocks plus the raw
// result payload.

// timedRunner builds a registry runner that times compute and renders
// outside the timing window, so Outcome.NsPerOp tracks the simulator,
// not the string formatting.
func timedRunner[T any](compute func(*harness.Context) (T, error), render func(*harness.Context, T) []string) harness.Runner {
	return func(ctx *harness.Context) (*harness.Outcome, error) {
		start := time.Now()
		r, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		elapsed := float64(time.Since(start).Nanoseconds())
		return &harness.Outcome{Blocks: render(ctx, r), Payload: r, NsPerOp: elapsed}, nil
	}
}

func init() {
	harness.Register("E2", timedRunner(
		func(*harness.Context) (*E2Result, error) { return RunE2Figure1(), nil },
		func(_ *harness.Context, r *E2Result) []string {
			return []string{r.Rendered, r.Association.Render()}
		}))
	harness.Register("E1", timedRunner(
		func(*harness.Context) (*E1Result, error) { return RunE1TableI(), nil },
		func(_ *harness.Context, r *E1Result) []string {
			return []string{
				r.Table.Render(),
				r.CoverageTable.Render(),
				fmt.Sprintf("Derived research gaps: %v\n", r.Gaps),
			}
		}))
	harness.Register("E3", timedRunner(
		func(ctx *harness.Context) (*E3Result, error) {
			return RunE3DetectionMatrix(ctx.Seed, WithRunPool(ctx.Pool))
		},
		func(_ *harness.Context, r *E3Result) []string { return []string{r.Table.Render()} }))
	harness.Register("E3b", timedRunner(
		func(ctx *harness.Context) (*E3bResult, error) {
			return RunE3bDetectionAblation(ctx.Seed, WithRunPool(ctx.Pool))
		},
		func(_ *harness.Context, r *E3bResult) []string { return []string{r.Table.Render()} }))
	harness.Register("E4", timedRunner(
		func(ctx *harness.Context) (*E4Result, error) {
			return RunE4EvidenceContinuity(ctx.Seed, WithRunPool(ctx.Pool))
		},
		func(_ *harness.Context, r *E4Result) []string { return []string{r.Table.Render()} }))
	harness.Register("E5", timedRunner(
		func(ctx *harness.Context) (*E5Result, error) {
			window := 600 * time.Millisecond
			if ctx.Quick {
				window = 300 * time.Millisecond
			}
			return RunE5GracefulDegradation(ctx.Seed, window, WithRunPool(ctx.Pool))
		},
		func(_ *harness.Context, r *E5Result) []string { return []string{r.Table.Render()} }))
	harness.Register("E6", timedRunner(
		func(ctx *harness.Context) (*E6Result, error) {
			return RunE6Recovery(ctx.Seed, WithRunPool(ctx.Pool))
		},
		func(_ *harness.Context, r *E6Result) []string { return []string{r.Table.Render()} }))
	harness.Register("E7", timedRunner(
		func(ctx *harness.Context) (*E7Result, error) {
			return RunE7Rollback(ctx.Seed, WithRunPool(ctx.Pool))
		},
		func(_ *harness.Context, r *E7Result) []string { return []string{r.Table.Render()} }))
	harness.Register("E8", timedRunner(
		func(ctx *harness.Context) (*E8Result, error) {
			return RunE8FleetAttestation(FleetSizes(ctx.Quick), ctx.Seed, WithRunPool(ctx.Pool))
		},
		func(_ *harness.Context, r *E8Result) []string {
			return []string{r.Table.Render(), r.Series.Render()}
		}))
	harness.Register("E9", timedRunner(
		func(ctx *harness.Context) (*E9Result, error) {
			txs := 200_000
			if ctx.Quick {
				txs = 50_000
			}
			return RunE9MonitorOverhead(txs)
		},
		func(ctx *harness.Context, r *E9Result) []string {
			if ctx.Stable {
				// Host-clock cells would defeat the byte-identity diff
				// the determinism gate runs; mask them.
				return []string{r.RenderStable()}
			}
			return []string{r.Table.Render()}
		}))
	harness.Register("E10", timedRunner(
		func(ctx *harness.Context) (*E10Result, error) {
			return RunE10CovertChannel(ctx.Seed, WithRunPool(ctx.Pool))
		},
		func(_ *harness.Context, r *E10Result) []string {
			return []string{r.Table.Render(), r.Series.Render()}
		}))
	harness.Register("E11", timedRunner(
		func(ctx *harness.Context) (*E11Result, error) {
			return RunE11PointerAuth(ctx.Seed, 500, WithRunPool(ctx.Pool))
		},
		func(_ *harness.Context, r *E11Result) []string { return []string{r.Table.Render()} }))
	harness.Register("E13", timedRunner(
		func(ctx *harness.Context) (*E13Result, error) {
			return RunE13WormResilience(E13Config{RootSeed: ctx.Seed, Quick: ctx.Quick}, WithRunPool(ctx.Pool))
		},
		func(_ *harness.Context, r *E13Result) []string { return []string{r.Table.Render()} }))
	harness.Register("E14", timedRunner(
		func(ctx *harness.Context) (*E14Result, error) {
			return RunE14FaultRecovery(E14Config{RootSeed: ctx.Seed, Quick: ctx.Quick}, WithRunPool(ctx.Pool))
		},
		func(_ *harness.Context, r *E14Result) []string { return []string{r.Table.Render()} }))
	harness.Register("E15", timedRunner(
		func(ctx *harness.Context) (*E15Result, error) {
			return RunE15Hierarchy(E15Config{RootSeed: ctx.Seed, Quick: ctx.Quick}, WithRunPool(ctx.Pool))
		},
		func(_ *harness.Context, r *E15Result) []string { return []string{r.Table.Render()} }))
	harness.Register("BV", timedRunner(
		func(ctx *harness.Context) (*BVResult, error) { return RunBVBatchVerify(ctx.Seed) },
		func(ctx *harness.Context, r *BVResult) []string {
			if ctx.Stable {
				// ns/sig cells are host-clock readings; mask them so the
				// determinism gate's byte-compare holds.
				return []string{r.RenderStable()}
			}
			return []string{r.Table.Render()}
		}))
}
