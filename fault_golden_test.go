package cres

import (
	"os"
	"path/filepath"
	"testing"

	"cres/internal/scenario"
)

// e14TestConfig is the default E14 matrix at the suite's root seed —
// the shape the golden file pins.
func e14TestConfig() E14Config { return E14Config{RootSeed: 7} }

// TestE14Golden pins the closed-loop recovery table two ways:
// byte-identical between -parallel 1 and 8 (every fault is a pure
// function of the plan seed and the link or device it hits, so
// parallelism must be invisible), and byte-identical to the committed
// golden file. The table holds only virtual-time quantities, so it is
// stable across hosts and Go releases. Regenerate with:
//
//	go test -run TestE14Golden -update-golden .
func TestE14Golden(t *testing.T) {
	serial, err := RunE14FaultRecovery(e14TestConfig(), WithParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunE14FaultRecovery(e14TestConfig(), WithParallel(8))
	if err != nil {
		t.Fatal(err)
	}
	got := serial.Table.Render()
	if p := parallel.Table.Render(); got != p {
		t.Fatalf("E14 table depends on parallelism:\n--- p1 ---\n%s\n--- p8 ---\n%s", got, p)
	}

	golden := filepath.Join("testdata", "fault_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("E14 table drifted from %s (re-run with -update-golden if intended):\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestE14RecoveryDominates is the experiment's headline claim: closing
// the recovery loop reaches full service strictly faster than stopping
// at containment in EVERY (topology, fault level) row of the default
// matrix — including the highest fault intensity, where the fabric
// drops a fifth of all traffic, 40% of the fleet crashes mid-campaign
// and the verifier goes dark three times.
func TestE14RecoveryDominates(t *testing.T) {
	res, err := RunE14FaultRecovery(e14TestConfig(), WithParallel(8))
	if err != nil {
		t.Fatal(err)
	}
	if !res.RecoveryDominates {
		t.Fatalf("recovery does not strictly dominate containment on TTFS:\n%s", res.Table.Render())
	}
	if res.MeanTTFSGain <= 0 {
		t.Fatalf("mean TTFS gain %v, want > 0", res.MeanTTFSGain)
	}
	byRow := make(map[int]map[string]E14Cell)
	for _, c := range res.Cells {
		row := c.Index / 2
		if byRow[row] == nil {
			byRow[row] = make(map[string]E14Cell)
		}
		byRow[row][c.Mode] = c
	}
	for row, modes := range byRow {
		contain, rec := modes[FaultModeContain], modes[FaultModeRecover]
		if rec.TTFS >= contain.TTFS {
			t.Errorf("row %d (%s/%s): recover TTFS %v not strictly below contain %v",
				row, rec.Topology, rec.Level, rec.TTFS, contain.TTFS)
		}
		if !rec.FullService {
			t.Errorf("row %d (%s/%s): recover mode never reached full service", row, rec.Topology, rec.Level)
		}
		if contain.FullService {
			t.Errorf("row %d (%s/%s): contain mode claims full service without recovering anyone", row, contain.Topology, contain.Level)
		}
		if rec.Recovered == 0 {
			t.Errorf("row %d (%s/%s): recover mode verified nobody clean", row, rec.Topology, rec.Level)
		}
		// Both modes of a row share one fault plan, so the damage they
		// must recover from is measured against the same campaign.
		if rec.FaultSeed != contain.FaultSeed {
			t.Errorf("row %d: fault seeds differ between modes (%d vs %d)", row, rec.FaultSeed, contain.FaultSeed)
		}
		if rec.Crashes != contain.Crashes {
			t.Errorf("row %d: crash schedules differ between modes (%d vs %d)", row, rec.Crashes, contain.Crashes)
		}
	}
}

// TestE14FaultsActuallyHurt pins that the fault axis is live: at the
// highest intensity the fabric must have dropped gossip, and the
// recovery loop must have needed attestation retries somewhere in the
// matrix — otherwise the sweep is measuring a perfect network and the
// "under fault injection" claim is vacuous.
func TestE14FaultsActuallyHurt(t *testing.T) {
	res, err := RunE14FaultRecovery(e14TestConfig(), WithParallel(8))
	if err != nil {
		t.Fatal(err)
	}
	var highDropped, noneDropped, retries uint64
	for _, c := range res.Cells {
		switch c.Level {
		case "high":
			highDropped += c.GossipDropped
			retries += c.Retries
		case "none":
			noneDropped += c.GossipDropped
		}
	}
	if highDropped == 0 {
		t.Error("high-intensity cells dropped no gossip — fault injector not wired")
	}
	if noneDropped != 0 {
		t.Errorf("fault-free cells dropped %d gossip messages, want 0", noneDropped)
	}
	if retries == 0 {
		t.Error("high-intensity recovery needed no attestation retries — retry path not exercised")
	}
}

// TestE13FaultFreeByteIdentical is the no-op contract of the fault
// layer: running E13 with an EXPLICIT zero fault spec must reproduce
// the committed E13 golden byte-for-byte. Faults off means off — no
// draw consumed, no schedule perturbed, no extra gossip armed.
func TestE13FaultFreeByteIdentical(t *testing.T) {
	plan, err := (scenario.FaultSpec{}).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Enabled() {
		t.Fatal("zero fault spec compiled to an enabled plan")
	}
	cfg := e13TestConfig()
	cfg.Faults = scenario.FaultSpec{}
	res, err := RunE13WormResilience(cfg, WithParallel(4))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "swarm_golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Table.Render(); got != string(want) {
		t.Fatalf("explicit zero-fault E13 run drifted from the fault-free golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
