package cres

import (
	"fmt"
	"testing"
)

// This file pins the stringly-identity → index-identity migration of
// the E8 fleet. Before the streaming engine, devices were named
// "device-%03d" and the verifier classified appraisals by parsing the
// index back out of the name — a round-trip that once shipped with an
// Sscanf "%03d" width that silently truncated "device-1234" to index
// 123 and misclassified every device past the first thousand. The
// fleet engine's identity IS the global index, so that bug class is
// unrepresentable; these tests keep the old and new classifications
// provably equivalent (and keep the old bug visibly a bug).

// The pre-streaming classification pair, replicated verbatim.

func oldFleetDeviceName(i int) string { return fmt.Sprintf("device-%03d", i) }

func oldIsTamperedName(name string) bool {
	var i int
	if _, err := fmt.Sscanf(name, "device-%d", &i); err != nil {
		return false
	}
	return i%8 == 3
}

// The shipped-bug variant: %03d as a scan verb is a maximum field
// width, truncating wide indices.
func buggyIsTamperedName(name string) bool {
	var i int
	if _, err := fmt.Sscanf(name, "device-%03d", &i); err != nil {
		return false
	}
	return i%8 == 3
}

// TestFleetClassificationOldVsNew runs every index of the 10,240-device
// fleet (the largest pre-streaming sweep point) through both
// identities: the old name round-trip and the fleet engine's
// index-based tamper rule. They must agree exactly — including the
// four-and-five-digit indices the %03d bug used to misclassify.
func TestFleetClassificationOldVsNew(t *testing.T) {
	const devices = 10_240
	cf, err := E8FleetSpec(devices).Compile()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cf.Engine(7)
	if err != nil {
		t.Fatal(err)
	}
	diverged := 0
	for i := 0; i < devices; i++ {
		oldClass := oldIsTamperedName(oldFleetDeviceName(i))
		newClass := eng.Tampered(i)
		if oldClass != newClass {
			t.Errorf("device %d: old classification %v, new %v", i, oldClass, newClass)
		}
		if buggyIsTamperedName(oldFleetDeviceName(i)) != newClass {
			diverged++
		}
	}
	// The buggy width-truncating parse must still be provably wrong for
	// wide indices — if it ever agrees everywhere, this regression test
	// has stopped guarding anything.
	if diverged == 0 {
		t.Fatal("the width-truncating parse agrees with index identity at 10240 devices; the regression fixture is broken")
	}
	t.Logf("width-truncating parse misclassifies %d of %d devices; index identity is immune", diverged, devices)
}

// TestFleetTamperRuleMatchesSummaryCounts cross-checks the rule against
// the engine's own run at the pre-streaming sweep point: the summary's
// tampered count must equal the rule's census, and every tampered
// device must be caught.
func TestFleetTamperRuleMatchesSummaryCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-device fleet run")
	}
	const devices = 10_240
	res, err := RunE8FleetAttestation([]int{devices}, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < devices; i++ {
		if i%8 == 3 {
			want++
		}
	}
	s := res.Rows[0].Summary
	if s.Tampered != want {
		t.Fatalf("summary counts %d tampered, rule says %d", s.Tampered, want)
	}
	if s.Caught != want || s.FalseAlarms != 0 {
		t.Fatalf("caught %d of %d, false alarms %d", s.Caught, want, s.FalseAlarms)
	}
}
