package cres

import (
	"fmt"
	"time"

	"cres/internal/cryptoutil"
	"cres/internal/report"
)

// This file implements BV: the batched-signature microbenchmark. It is
// not one of the paper's experiments — it is the perf-guard's
// stethoscope on the crypto kernel the fleet hot path (E8) now runs
// on. E8's devices/sec folds signing, policy checks and the virtual
// latency sweep into one number; BV isolates the verification
// primitive itself, so a regression in the multi-scalar multiplication
// or the hint fast path is visible directly instead of diluted ~5x.
// CI watches it through the BENCH_perf.json experiments section via
// `cresbench -only BV`.

// bvSigs is the batch size BV measures — the fleet engine's default
// provisioning-epoch batch, so the measured shape is the deployed one.
const bvSigs = 256

// bvTitle is the BV table title (shared with the stable rendering).
const bvTitle = "BV — Batched ed25519 verification microbenchmark (one epoch AIK, 256 quote-sized messages)"

// BVRow is one verification path's measurement.
type BVRow struct {
	// Path names the verification strategy.
	Path string
	// NsPerSig is host-clock nanoseconds per signature verified.
	NsPerSig float64
	// Verified is how many of the batch's signatures verified true — a
	// deterministic column proving all paths agreed on the verdicts.
	Verified int
}

// BVResult is the batch-verification microbenchmark.
type BVResult struct {
	Sigs  int
	Rows  []BVRow
	Table *report.Table
}

// RenderStable renders the table with the host-clock column masked, so
// the determinism gate can byte-compare suite output across runs.
func (r *BVResult) RenderStable() string {
	t := report.NewTable(bvTitle, "Path", "ns/sig", "Verified")
	for _, row := range r.Rows {
		t.AddRow(row.Path, "masked", report.I(row.Verified))
	}
	return t.Render()
}

// RunBVBatchVerify measures ed25519 verification throughput over one
// fleet-shaped batch (one provisioning-epoch AIK, bvSigs quote-sized
// messages) three ways: the stdlib per-signature path the engine used
// before batching, the batch verifier admitting compressed signatures,
// and the batch verifier fed signer hints — the exact configuration
// the fleet hot path runs. Keys, messages and coefficients all derive
// from seed, so everything except the ns/sig columns is reproducible.
func RunBVBatchVerify(seed int64) (*BVResult, error) {
	entropy := cryptoutil.NewDeterministicEntropy(fmt.Appendf(nil, "bv-%d", seed))
	var keySeed [32]byte
	if _, err := entropy.Read(keySeed[:]); err != nil {
		return nil, err
	}
	var signer cryptoutil.VartimeSigner
	signer.Init(keySeed[:])
	pub := signer.Public()

	// One provisioning epoch: bvSigs quote-body-sized messages under one
	// AIK, like a fleet batch.
	msgs := make([][]byte, bvSigs)
	sigs := make([][64]byte, bvSigs)
	hints := make([]cryptoutil.RHint, bvSigs)
	for i := range msgs {
		msgs[i] = make([]byte, 132) // the canonical 3-PCR quote body size
		if _, err := entropy.Read(msgs[i]); err != nil {
			return nil, err
		}
		sigs[i], hints[i] = signer.Sign(msgs[i])
	}

	res := &BVResult{Sigs: bvSigs}
	measure := func(path string, verify func() int) {
		start := time.Now()
		verified := verify()
		elapsed := time.Since(start)
		res.Rows = append(res.Rows, BVRow{
			Path:     path,
			NsPerSig: float64(elapsed.Nanoseconds()) / float64(bvSigs),
			Verified: verified,
		})
	}

	measure("stdlib per-signature", func() int {
		n := 0
		for i := range msgs {
			if pub.Verify(msgs[i], sigs[i][:]) {
				n++
			}
		}
		return n
	})

	countTrue := func(oks []bool) int {
		n := 0
		for _, ok := range oks {
			if ok {
				n++
			}
		}
		return n
	}
	coeff := cryptoutil.NewDeterministicEntropy(fmt.Appendf(nil, "bv-coeff-%d", seed))
	bv := cryptoutil.NewBatchVerifier(coeff)
	measure("batch-256", func() int {
		bv.Reset(coeff)
		for i := range msgs {
			bv.Add(pub, msgs[i], sigs[i][:])
		}
		return countTrue(bv.Flush())
	})
	measure("batch-256 hinted (fleet shape)", func() int {
		bv.Reset(coeff)
		for i := range msgs {
			bv.AddHinted(pub, msgs[i], sigs[i][:], &hints[i])
		}
		return countTrue(bv.Flush())
	})

	for _, row := range res.Rows {
		if row.Verified != bvSigs {
			return nil, fmt.Errorf("bv: %s verified %d/%d honest signatures", row.Path, row.Verified, bvSigs)
		}
	}

	t := report.NewTable(bvTitle, "Path", "ns/sig", "Verified")
	for _, row := range res.Rows {
		t.AddRow(row.Path, fmt.Sprintf("%.0f", row.NsPerSig), report.I(row.Verified))
	}
	res.Table = t
	return res, nil
}
