package cres

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"cres/internal/scenario"
)

// e13TestConfig is the default E13 matrix at the suite's root seed —
// the shape the golden file pins.
func e13TestConfig() E13Config { return E13Config{RootSeed: 7} }

// TestE13Golden pins the networked-fleet resilience table two ways:
// byte-identical between -parallel 1 and 8 (the worm schedules every
// hop on the cell's own engine, so parallelism must be invisible), and
// byte-identical to the committed golden file. The table holds only
// virtual-time quantities, so it is stable across hosts and Go
// releases. Regenerate with:
//
//	go test -run TestE13Golden -update-golden .
func TestE13Golden(t *testing.T) {
	serial, err := RunE13WormResilience(e13TestConfig(), WithParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunE13WormResilience(e13TestConfig(), WithParallel(8))
	if err != nil {
		t.Fatal(err)
	}
	got := serial.Table.Render()
	if p := parallel.Table.Render(); got != p {
		t.Fatalf("E13 table depends on parallelism:\n--- p1 ---\n%s\n--- p8 ---\n%s", got, p)
	}

	golden := filepath.Join("testdata", "swarm_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("E13 table drifted from %s (re-run with -update-golden if intended):\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestE13CooperationDominatesIsolation is the paper-level claim the
// experiment exists to check: in the default matrix, gossiping fleets
// save strictly more devices than fleets whose members defend alone —
// in every single (wiring, dwell) row, not just on average.
func TestE13CooperationDominatesIsolation(t *testing.T) {
	res, err := RunE13WormResilience(e13TestConfig(), WithParallel(8))
	if err != nil {
		t.Fatal(err)
	}
	if !res.CoopDominatesIsolated {
		t.Fatalf("cooperative mode does not strictly dominate isolated mode on devices saved:\n%s", res.Table.Render())
	}
	if res.SavedByGossip <= 0 {
		t.Fatalf("gossip saved %d devices in total (want > 0)", res.SavedByGossip)
	}
	byKey := make(map[string]map[string]E13Cell)
	for _, c := range res.Cells {
		key := c.Topology + "/" + c.Dwell.String() + "/" + string(rune('0'+c.Fanout))
		if byKey[key] == nil {
			byKey[key] = make(map[string]E13Cell)
		}
		byKey[key][c.Mode] = c
	}
	for key, modes := range byKey {
		iso, coop := modes[SwarmIsolated], modes[SwarmCooperative]
		if coop.Saved <= iso.Saved {
			t.Errorf("%s: coop saved %d, isolated saved %d — no strict domination", key, coop.Saved, iso.Saved)
		}
		if coop.Blocked == 0 {
			t.Errorf("%s: cooperative mode blocked no propagation attempts", key)
		}
		if base := modes[SwarmBaseline]; base.Informed != 0 || base.Detected {
			t.Errorf("%s: baseline mode must not detect or gossip (informed=%d detected=%v)", key, base.Informed, base.Detected)
		}
		if !coop.Detected {
			t.Errorf("%s: patient zero undetected in cooperative mode", key)
		}
	}
}

// TestE13WormSpreadsWithoutCooperation pins the threat side: with no
// cooperative response, a connected wiring lets the worm take the
// whole fleet — which is exactly why the isolated rows save nobody.
func TestE13WormSpreadsWithoutCooperation(t *testing.T) {
	res, err := RunE13WormResilience(E13Config{
		RootSeed:   11,
		FleetSize:  6,
		Topologies: []scenario.TopologySpec{{Kind: scenario.TopologyRing, Size: 6}},
		Dwells:     []time.Duration{time.Millisecond},
		Modes:      []string{SwarmBaseline, SwarmIsolated},
	}, WithParallel(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.Infected != 6 {
			t.Errorf("%s: %d/6 infected, want full spread", c.Mode, c.Infected)
		}
		if c.Saved != 0 || c.LinksCut != 0 {
			t.Errorf("%s: saved=%d links cut=%d, want zeros", c.Mode, c.Saved, c.LinksCut)
		}
	}
}
