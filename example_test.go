package cres_test

import (
	"fmt"
	"time"

	"cres"
	"cres/internal/attack"
	"cres/internal/hw"
	"cres/internal/landscape"
)

// ExampleNewDevice shows the minimal lifecycle: build, boot, verify.
func ExampleNewDevice() {
	dev, err := cres.NewDevice("field-unit-1", cres.WithSeed(1))
	if err != nil {
		fmt.Println(err)
		return
	}
	rep, err := dev.Boot()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("booted %s v%d from slot %s\n", rep.Image.Name, rep.Image.Version, rep.BootedSlot)
	fmt.Printf("architecture: %s, health: %s\n", dev.Arch, dev.SSM.State())
	// Output:
	// booted firmware v1 from slot A
	// architecture: cres, health: healthy
}

// ExampleLaunch shows detection and automatic response to an injected
// attack.
func ExampleLaunch() {
	dev, _ := cres.NewDevice("field-unit-2", cres.WithSeed(1))
	dev.Boot()
	dev.RunFor(5 * time.Millisecond)

	if err := cres.Launch(dev, attack.SecureProbe{}); err != nil {
		fmt.Println(err)
		return
	}
	dev.RunFor(10 * time.Millisecond)

	fmt.Printf("state: %s\n", dev.SSM.State())
	fmt.Printf("isolated: %v\n", dev.Responder.Isolated())
	fmt.Printf("critical services up: %v\n", dev.Degrader.CriticalUp())
	// Output:
	// state: degraded
	// isolated: [app-core]
	// critical services up: true
}

// ExampleRunE1TableI regenerates the paper's Table I gap analysis.
func ExampleRunE1TableI() {
	res := cres.RunE1TableI()
	fmt.Printf("requirements: %d\n", res.Requirements)
	fmt.Printf("derived gaps: %v\n", res.Gaps)
	// Output:
	// requirements: 21
	// derived gaps: [Active countermeasure Evidence Collection]
}

// ExampleDevice_ForensicReport reconstructs a breach timeline.
func ExampleDevice_ForensicReport() {
	dev, _ := cres.NewDevice("field-unit-3", cres.WithSeed(1))
	dev.Boot()
	dev.RunFor(5 * time.Millisecond)
	start := dev.Now()
	cres.Launch(dev, attack.FirmwareTamper{})
	dev.RunFor(10 * time.Millisecond)

	rep := dev.ForensicReport(start, dev.Now())
	fmt.Printf("chain intact: %v\n", rep.ChainIntact)
	fmt.Printf("alerts: %v, responses: %v\n", rep.Alerts > 0, rep.Responses > 0)
	// Output:
	// chain intact: true
	// alerts: true, responses: true
}

// ExampleDevice_baseline contrasts the passive architecture.
func ExampleDevice_baseline() {
	dev, _ := cres.NewDevice("legacy-unit",
		cres.WithSeed(1), cres.WithArchitecture(cres.ArchBaseline))
	dev.Boot()
	cres.Launch(dev, attack.SecureProbe{})
	dev.RunFor(10 * time.Millisecond)

	fmt.Printf("has security manager: %v\n", dev.SSM != nil)
	fmt.Printf("attack left a trace: %v\n", dev.PlainLog.Len() > 1)
	// Output:
	// has security manager: false
	// attack left a trace: false
}

// ExamplePrincipleFor shows the Figure 1 function/principle association.
func ExamplePrincipleFor() {
	for _, f := range landscape.AllFunctions() {
		fmt.Printf("%s -> %s\n", f, landscape.PrincipleFor(f))
	}
	// Output:
	// IDENTIFY -> Managing security risks
	// PROTECT -> Protecting against cyber attack
	// DETECT -> Detecting cyber security incidents
	// RESPOND -> Minimising the impact of cyber security incidents
	// RECOVER -> Minimising the impact of cyber security incidents
}

// Example_attackSuite lists the scenario catalogue.
func Example_attackSuite() {
	for _, sc := range attack.Suite()[:3] {
		fmt.Println(sc.Name())
	}
	fmt.Printf("... %d scenarios total\n", len(attack.Suite()))
	// Output:
	// secure-probe
	// firmware-tamper
	// firmware-downgrade
	// ... 11 scenarios total
}

// Example_memoryMap shows the reference SoC's isolated regions.
func Example_memoryMap() {
	dev, _ := cres.NewDevice("map-demo")
	for _, r := range dev.SoC.Mem.Regions() {
		if r.World == hw.WorldIsolated {
			fmt.Printf("%s: %s world\n", r.Name, r.World)
		}
	}
	// Output:
	// ssm-sram: isolated world
	// evidence-store: isolated world
}
