package cres

import (
	"time"

	"cres/internal/attack"
	"cres/internal/m2m"
)

// AttackTestbed is a ready-to-attack device rig: a device of the chosen
// architecture with a network operator peer, a provisioned TEE secret
// and a loaded trustlet — everything the full attack suite needs. The
// cresim CLI and the examples build on it.
type AttackTestbed struct {
	tb *testbed
}

// NewAttackTestbed assembles and boots a testbed.
func NewAttackTestbed(arch Architecture, seed int64) (*AttackTestbed, error) {
	tb, err := newTestbed(arch, seed)
	if err != nil {
		return nil, err
	}
	return &AttackTestbed{tb: tb}, nil
}

// Device returns the device under test.
func (t *AttackTestbed) Device() *Device { return t.tb.dev }

// Peer returns the operator-side network endpoint.
func (t *AttackTestbed) Peer() *m2m.Endpoint { return t.tb.peer }

// AttackTarget returns the attack-injection view of the testbed.
func (t *AttackTestbed) AttackTarget() *attack.Target { return t.tb.tgt }

// Warm runs healthy background workload for the given duration so the
// anomaly detectors learn their baselines.
func (t *AttackTestbed) Warm(d time.Duration) error { return t.tb.warm(d) }
